//! The server runtime: accept loop, bounded queue, worker pool, routing.
//!
//! The shape is deliberately boring: one blocking accept loop feeds a
//! fixed pool of worker threads through a bounded queue. When the queue
//! is full the accept loop answers `503` with `Retry-After` *itself* —
//! explicit backpressure instead of an unbounded backlog, mirroring how
//! the chase governor refuses work instead of letting it balloon.
//!
//! Warm state shared by every worker:
//!
//! * a [`DecisionCache`] memoizing whole `(q1, q2)` verdicts, and
//! * a [`SnapshotCache`] holding each `q1`'s chase so repeated questions
//!   about the same query pay only the homomorphism search.
//!
//! A decision miss flows through both: the decision cache's
//! `contains_with_compute` fills from the snapshot cache, whose
//! [`ChaseSnapshot::contains`](flogic_core::ChaseSnapshot::contains)
//! mirrors `contains_with` exactly — so verdicts are bit-identical to
//! the `flq` CLI's, warm or cold.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use flogic_core::{theorem_bound, ContainmentOptions, ContainmentResult, CoreError, DecisionCache};
use flogic_model::ConjunctiveQuery;
use flogic_obs::export::profile_json;
use flogic_obs::{ChaseProfile, TraceHandle, Tracer};
use flogic_syntax::parse_query;
use flogic_term::Metrics;

use crate::api::{self, ApiError};
use crate::http::{self, ReadError, Request, Response};
use crate::signal;
use crate::snapshots::SnapshotCache;

/// Configuration of a [`Server`], settable from the command line via
/// [`ServerConfig::from_args`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address (`--addr`); `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests (`--workers`).
    pub workers: usize,
    /// Bounded accept-queue depth (`--queue`); connections beyond it are
    /// answered `503` with `Retry-After`.
    pub queue_depth: usize,
    /// Byte cap of the resident chase-snapshot cache (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Cap on request bodies (`--max-body-bytes`).
    pub max_body_bytes: usize,
    /// Chase discovery threads per decision (`--threads`), as in
    /// `flq contains --threads`.
    pub threads: usize,
    /// Server-side default wall-clock budget per decision (`--timeout`,
    /// milliseconds); requests may override. `None` means unlimited.
    pub default_timeout_ms: Option<u64>,
    /// Server-side default cap on materialized chase conjuncts
    /// (`--max-conjuncts`); requests may override.
    pub max_conjuncts: usize,
    /// Socket read timeout, which doubles as the keep-alive idle
    /// timeout (`--read-timeout`, milliseconds).
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 2,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            max_body_bytes: 1 << 20,
            threads: 1,
            default_timeout_ms: None,
            max_conjuncts: ContainmentOptions::default().max_conjuncts,
            read_timeout_ms: 5_000,
        }
    }
}

/// The `flq serve` / `flqd` flag reference, shared by both binaries'
/// usage text.
pub const SERVE_FLAGS: &str = "[--addr HOST:PORT] [--workers N] [--queue N] [--cache-bytes N] \
[--max-body-bytes N] [--threads N] [--timeout MS] [--max-conjuncts N] [--read-timeout MS]";

impl ServerConfig {
    /// Parses command-line flags into a config, starting from defaults.
    /// Unknown flags and malformed values are errors (the caller prints
    /// the message and exits with the usage status).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServerConfig, String> {
        let mut config = ServerConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |what: &str| it.next().ok_or_else(|| format!("{arg} needs {what}"));
            match arg.as_str() {
                "--addr" => config.addr = value("an address")?,
                "--workers" => config.workers = parse_flag(&arg, value("a number")?)?,
                "--queue" => config.queue_depth = parse_flag(&arg, value("a number")?)?,
                "--cache-bytes" => config.cache_bytes = parse_flag(&arg, value("a number")?)?,
                "--max-body-bytes" => config.max_body_bytes = parse_flag(&arg, value("a number")?)?,
                "--threads" => config.threads = parse_flag(&arg, value("a number")?)?,
                "--timeout" => {
                    config.default_timeout_ms =
                        Some(parse_flag(&arg, value("a duration in milliseconds")?)?)
                }
                "--max-conjuncts" => config.max_conjuncts = parse_flag(&arg, value("a number")?)?,
                "--read-timeout" => {
                    config.read_timeout_ms = parse_flag(&arg, value("a duration in milliseconds")?)?
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if config.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
        if config.queue_depth == 0 {
            return Err("--queue must be at least 1".into());
        }
        Ok(config)
    }

    /// The base decision options this config implies; per-request knobs
    /// are applied on top (see [`api::RequestOpts::apply`]).
    pub fn base_options(&self) -> ContainmentOptions {
        let mut opts = ContainmentOptions {
            threads: self.threads,
            max_conjuncts: self.max_conjuncts,
            ..ContainmentOptions::default()
        };
        if let Some(ms) = self.default_timeout_ms {
            opts.budget = flogic_core::Budget::with_timeout(Duration::from_millis(ms));
        }
        opts
    }
}

fn parse_flag<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

/// State shared between the accept loop and the workers.
struct Shared {
    config: ServerConfig,
    base_opts: ContainmentOptions,
    decisions: DecisionCache,
    snapshots: SnapshotCache,
    profile: Mutex<ChaseProfile>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    requests_total: AtomicU64,
    rejected_total: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::shutdown_requested()
    }
}

/// A handle for stopping a running [`Server`] from another thread (the
/// in-process equivalent of SIGTERM).
#[derive(Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Asks the server to stop accepting, drain in-flight requests and
    /// return from [`Server::run`].
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::Relaxed);
        self.0.available.notify_all();
    }
}

/// A bound, not-yet-running containment server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and allocates the shared caches. The server
    /// does not accept until [`run`](Server::run).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let base_opts = config.base_options();
        let snapshots = SnapshotCache::new(config.cache_bytes);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                base_opts,
                snapshots,
                decisions: DecisionCache::new(),
                profile: Mutex::new(ChaseProfile::default()),
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
                requests_total: AtomicU64::new(0),
                rejected_total: AtomicU64::new(0),
                config,
            }),
        })
    }

    /// The bound address (the actual port when `--addr` asked for 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(Arc::clone(&self.shared))
    }

    /// Runs the accept loop until shutdown is requested (via
    /// [`ServerHandle::shutdown`] or SIGTERM/SIGINT once
    /// [`signal::install`] has run), then drains: queued and in-flight
    /// requests complete, workers join, and `run` returns.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;
        let workers: Vec<_> = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("flqd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => enqueue(&shared, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // The poll interval is a floor on cold-connection
                    // latency, so keep it tight; 1ms of idle sleep is
                    // invisible in CPU terms.
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: stop accepting (listener drops), let workers finish the
        // queue and their in-flight connections, then join them.
        drop(listener);
        shared.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Queues an accepted connection, or answers `503` on the spot when the
/// queue is at capacity.
fn enqueue(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.len() >= shared.config.queue_depth {
        drop(queue);
        shared.rejected_total.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        let _ = http::write_response(&mut stream, &ApiError::overloaded().to_response(), true);
        return;
    }
    queue.push_back(stream);
    drop(queue);
    shared.available.notify_one();
}

/// One worker: pop connections until shutdown *and* the queue is empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _timeout) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => return,
        }
    }
}

/// Serves one (possibly keep-alive) connection to completion.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.config.read_timeout_ms)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(req) => {
                shared.requests_total.fetch_add(1, Ordering::Relaxed);
                // A panic below a request must not take the worker down
                // with it; answer 500 and close.
                let resp =
                    catch_unwind(AssertUnwindSafe(|| route(shared, &req))).unwrap_or_else(|_| {
                        ApiError::internal("request handler panicked").to_response()
                    });
                let close = req.close || shared.draining();
                if http::write_response(&mut writer, &resp, close).is_err() || close {
                    return;
                }
            }
            // Clean close, idle timeout, or socket error: drop quietly.
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                let resp = ApiError::bad_request(format!("malformed HTTP request: {msg}"));
                let _ = http::write_response(&mut writer, &resp.to_response(), true);
                return;
            }
            Err(ReadError::BodyTooLarge { declared, cap }) => {
                let resp = ApiError::payload_too_large(declared, cap);
                let _ = http::write_response(&mut writer, &resp.to_response(), true);
                return;
            }
        }
    }
}

/// Dispatches one request to its endpoint.
fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/contains") => contains_endpoint(shared, &req.body),
        ("POST", "/v1/contains_batch") => batch_endpoint(shared, &req.body),
        ("GET", "/metrics") => Response::text(200, metrics_text(shared)),
        ("GET", "/profile") => {
            let profile = shared.profile.lock().expect("profile poisoned");
            Response::json(200, profile_json(&profile))
        }
        (_, "/v1/contains" | "/v1/contains_batch" | "/metrics" | "/profile") => {
            ApiError::method_not_allowed(&req.method, &req.path).to_response()
        }
        _ => ApiError::not_found(&req.path).to_response(),
    }
}

/// `POST /v1/contains`: one pair, one verdict object.
fn contains_endpoint(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let req = match api::parse_contains(body) {
        Ok(req) => req,
        Err(e) => return e.to_response(),
    };
    let (q1, q2) = match (parse_wire_query(&req.q1), parse_wire_query(&req.q2)) {
        (Ok(q1), Ok(q2)) => (q1, q2),
        (Err(e), _) | (_, Err(e)) => return e.to_response(),
    };
    let tracer = Tracer::with_default_capacity();
    let mut opts = req.opts.apply(&shared.base_opts);
    opts.trace = TraceHandle::enabled(&tracer);
    let out = decide_pair(shared, &q1, &q2, &opts);
    absorb_trace(shared, &tracer);
    match out {
        Ok(result) => Response::json(200, api::verdict_json(&result)),
        Err(e) => api::core_error(&e).to_response(),
    }
}

/// `POST /v1/contains_batch`: many pairs, verdicts in request order.
/// Pairs that share a `q1` (under the canonical key) share one resident
/// chase — the server-side analogue of
/// [`contains_batch`](flogic_core::contains_batch).
fn batch_endpoint(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let req = match api::parse_batch(body) {
        Ok(req) => req,
        Err(e) => return e.to_response(),
    };
    let mut parsed = Vec::with_capacity(req.pairs.len());
    for (i, (q1, q2)) in req.pairs.iter().enumerate() {
        let q1 = match parse_wire_query(q1) {
            Ok(q) => q,
            Err(e) => {
                return ApiError::parse_error(format!("pairs[{i}][0]: {}", e.message)).to_response()
            }
        };
        let q2 = match parse_wire_query(q2) {
            Ok(q) => q,
            Err(e) => {
                return ApiError::parse_error(format!("pairs[{i}][1]: {}", e.message)).to_response()
            }
        };
        parsed.push((q1, q2));
    }
    let tracer = Tracer::with_default_capacity();
    let mut opts = req.opts.apply(&shared.base_opts);
    opts.trace = TraceHandle::enabled(&tracer);
    let mut results = Vec::with_capacity(parsed.len());
    for (q1, q2) in &parsed {
        match decide_pair(shared, q1, q2, &opts) {
            Ok(result) => results.push(result),
            Err(e) => {
                absorb_trace(shared, &tracer);
                return api::core_error(&e).to_response();
            }
        }
    }
    absorb_trace(shared, &tracer);
    Response::json(200, api::batch_json(&results))
}

/// The warm decision path: decision cache over snapshot cache over the
/// Theorem 12 engine. Verdict-identical to a fresh `contains_with` (the
/// contract both caches document).
fn decide_pair(
    shared: &Arc<Shared>,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<ContainmentResult, CoreError> {
    shared.decisions.contains_with_compute(q1, q2, opts, || {
        let snapshot = shared
            .snapshots
            .get_or_build(q1, theorem_bound(q1, q2), opts)?;
        snapshot.contains(q2, opts)
    })
}

fn parse_wire_query(text: &str) -> Result<ConjunctiveQuery, ApiError> {
    parse_query(text).map_err(|e| ApiError::parse_error(e.to_string()))
}

/// Folds a request's trace into the server-lifetime profile served by
/// `GET /profile`.
fn absorb_trace(shared: &Arc<Shared>, tracer: &Arc<Tracer>) {
    let request_profile = ChaseProfile::from_snapshot(&tracer.snapshot());
    let mut profile = shared.profile.lock().expect("profile poisoned");
    profile.absorb(&request_profile);
}

/// The `GET /metrics` body: the process-wide engine counters
/// ([`Metrics::render_text`]) plus the server's own gauges, same
/// `name value` line format.
fn metrics_text(shared: &Arc<Shared>) -> String {
    use std::fmt::Write as _;
    let mut s = Metrics::global().snapshot().render_text();
    let stats = shared.snapshots.stats();
    let _ = writeln!(
        s,
        "flqd_requests_total {}",
        shared.requests_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        s,
        "flqd_rejected_total {}",
        shared.rejected_total.load(Ordering::Relaxed)
    );
    let _ = writeln!(s, "flqd_snapshot_hits {}", stats.hits);
    let _ = writeln!(s, "flqd_snapshot_misses {}", stats.misses);
    let _ = writeln!(s, "flqd_snapshot_evictions {}", stats.evictions);
    let _ = writeln!(s, "flqd_snapshot_uncacheable {}", stats.uncacheable);
    let _ = writeln!(s, "flqd_snapshot_resident_bytes {}", stats.resident_bytes);
    let _ = writeln!(
        s,
        "flqd_snapshot_resident_entries {}",
        stats.resident_entries
    );
    let _ = writeln!(
        s,
        "flqd_snapshot_cap_bytes {}",
        shared.snapshots.cap_bytes()
    );
    let _ = writeln!(s, "flqd_decision_cache_entries {}", shared.decisions.len());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_every_flag_and_rejects_nonsense() {
        let args = [
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue",
            "9",
            "--cache-bytes",
            "1024",
            "--max-body-bytes",
            "2048",
            "--threads",
            "2",
            "--timeout",
            "250",
            "--max-conjuncts",
            "77",
            "--read-timeout",
            "300",
        ];
        let config = ServerConfig::from_args(args.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue_depth, 9);
        assert_eq!(config.cache_bytes, 1024);
        assert_eq!(config.max_body_bytes, 2048);
        assert_eq!(config.threads, 2);
        assert_eq!(config.default_timeout_ms, Some(250));
        assert_eq!(config.max_conjuncts, 77);
        assert_eq!(config.read_timeout_ms, 300);

        for bad in [
            vec!["--bogus"],
            vec!["--workers"],
            vec!["--workers", "zero"],
            vec!["--workers", "0"],
            vec!["--queue", "0"],
        ] {
            assert!(
                ServerConfig::from_args(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn base_options_carry_config_knobs() {
        let config = ServerConfig {
            threads: 3,
            max_conjuncts: 42,
            default_timeout_ms: Some(5),
            ..ServerConfig::default()
        };
        let opts = config.base_options();
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.max_conjuncts, 42);
        assert!(!opts.budget.is_unlimited());
        assert!(opts.analysis);
        assert_eq!(opts.level_bound, None);
    }
}
