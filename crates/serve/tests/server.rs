//! End-to-end tests of a running in-process `flqd`: real sockets, real
//! HTTP, real decisions — only the process boundary is elided.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use flogic_serve::{Server, ServerConfig, ServerHandle};

/// Binds a server with `config`, runs it on a background thread, and
/// returns its address, its handle, and the join handle of `run`.
fn start(
    mut config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    thread::JoinHandle<std::io::Result<()>>,
) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

/// One full HTTP/1.1 exchange on a fresh connection; returns
/// `(status, body)`.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    read_response(&mut BufReader::new(&mut stream))
}

fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    let (status, _headers, body) = read_response_full(reader);
    (status, body)
}

/// Reads one `content-length`-framed response; returns status, the
/// lowercased header block, and the body. Takes a caller-owned reader so
/// pipelined responses on one connection are not lost to a discarded
/// buffer.
fn read_response_full<R: BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    let mut headers = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let line = line.to_ascii_lowercase();
        if let Some(v) = line
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
        headers.push_str(&line);
        headers.push('\n');
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

const Q1: &str = "q(X, Z) :- sub(X, Y), sub(Y, Z).";
const Q2: &str = "p(X, Z) :- sub(X, Z).";

fn contains_body(q1: &str, q2: &str) -> String {
    format!("{{\"q1\":{},\"q2\":{}}}", serde_lite(q1), serde_lite(q2))
}

/// Just enough JSON string quoting for the test queries (no escapes
/// needed in the surface syntax used here).
fn serde_lite(s: &str) -> String {
    format!("\"{s}\"")
}

#[test]
fn contains_and_batch_answer_real_verdicts() {
    let (addr, handle, join) = start(ServerConfig::default());

    // Cold single decision: holds.
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q1, Q2));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":\"holds\""), "{body}");

    // Reverse direction: not_holds.
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q2, Q1));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":\"not_holds\""), "{body}");

    // Batch sharing one q1; results in request order.
    let batch = format!(
        "{{\"pairs\":[[{q1},{q2}],[{q1},{q1}],[{q2},{q1}]]}}",
        q1 = serde_lite(Q1),
        q2 = serde_lite(Q2)
    );
    let (status, body) = exchange(addr, "POST", "/v1/contains_batch", &batch);
    assert_eq!(status, 200, "{body}");
    let verdicts: Vec<&str> = body.matches("\"verdict\":\"holds\"").collect();
    assert_eq!(verdicts.len(), 2, "{body}");
    assert!(body.contains("\"verdict\":\"not_holds\""), "{body}");

    // Warm repeat of the first pair still answers identically.
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q1, Q2));
    assert_eq!(status, 200);
    assert!(body.contains("\"verdict\":\"holds\""), "{body}");

    // Metrics and profile report the work. The default /metrics body is
    // Prometheus exposition; ?format=text keeps the legacy flat lines.
    let (status, metrics) = exchange(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE flqd_requests_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE flqd_stage_duration_nanoseconds histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("flqd_stage_duration_nanoseconds_bucket{stage=\"decide\",le=\"+Inf\"}"),
        "{metrics}"
    );
    let (status, metrics) = exchange(addr, "GET", "/metrics?format=text", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("flq_chase_runs "), "{metrics}");
    assert!(metrics.contains("flqd_requests_total "), "{metrics}");
    assert!(metrics.contains("flqd_snapshot_hits "), "{metrics}");
    let (status, profile) = exchange(addr, "GET", "/profile", "");
    assert_eq!(status, 200);
    assert!(profile.contains("\"rule_firings\":["), "{profile}");

    handle.shutdown();
    join.join().expect("join").expect("clean drain");
}

#[test]
fn exhausted_decisions_are_200_with_exhausted_verdict() {
    let (addr, handle, join) = start(ServerConfig::default());
    let body = format!(
        "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":1,\"analysis\":false}}",
        serde_lite(Q1),
        serde_lite(Q2)
    );
    let (status, body) = exchange(addr, "POST", "/v1/contains", &body);
    assert_eq!(
        status, 200,
        "exhaustion is an outcome, not an error: {body}"
    );
    assert!(body.contains("\"verdict\":\"exhausted\""), "{body}");
    assert!(body.contains("\"reason\":\"conjuncts\""), "{body}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn bad_requests_get_typed_errors() {
    let (addr, handle, join) = start(ServerConfig {
        max_body_bytes: 256,
        ..ServerConfig::default()
    });

    let (status, body) = exchange(addr, "POST", "/v1/contains", "not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"parse_error\""), "{body}");

    let (status, body) = exchange(
        addr,
        "POST",
        "/v1/contains",
        &contains_body("q(X) :- nonsense", Q2),
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"parse_error\""), "{body}");

    // Arity mismatch is its own code.
    let (status, body) = exchange(
        addr,
        "POST",
        "/v1/contains",
        &contains_body("q(X) :- sub(X, Y).", Q2),
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"arity_mismatch\""), "{body}");

    let (status, body) = exchange(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"code\":\"not_found\""), "{body}");

    let (status, body) = exchange(addr, "GET", "/v1/contains", "");
    assert_eq!(status, 405);
    assert!(body.contains("\"code\":\"method_not_allowed\""), "{body}");

    let oversized = contains_body(&"x".repeat(500), Q2);
    let (status, body) = exchange(addr, "POST", "/v1/contains", &oversized);
    assert_eq!(status, 413);
    assert!(body.contains("\"code\":\"payload_too_large\""), "{body}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    // One worker, queue depth one. Pipeline three requests in a single
    // write: the reactor dispatches them back-to-back (nanoseconds
    // apart), while even a cache-hit decision costs the worker tens of
    // microseconds — so the queue is necessarily full for at least one
    // of the tail requests. That one is answered 503 + Retry-After on
    // the spot, per request: the connection stays open and responses
    // stay in pipeline order.
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);
    let body = contains_body(Q1, Q2);
    let one = format!(
        "POST /v1/contains HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    writer
        .write_all(format!("{one}{one}{one}").as_bytes())
        .unwrap();

    // First into an empty queue: always served.
    let (status, body1) = read_response(&mut reader);
    assert_eq!(status, 200, "{body1}");
    assert!(body1.contains("\"verdict\":\"holds\""), "{body1}");
    // Of the two tail requests, at least one bounced; whichever did
    // carries the typed 503 and its Retry-After.
    let mut statuses = Vec::new();
    for _ in 0..2 {
        let (status, headers, body) = read_response_full(&mut reader);
        if status == 503 {
            assert!(headers.contains("retry-after: 1"), "{headers}");
            assert!(body.contains("\"code\":\"overloaded\""), "{body}");
        } else {
            assert_eq!(status, 200, "{body}");
            assert!(body.contains("\"verdict\":\"holds\""), "{body}");
        }
        statuses.push(status);
    }
    assert!(statuses.contains(&503), "{statuses:?}");

    // The connection survived the rejection: the same socket serves a
    // fourth request once the queue has room again.
    write!(writer, "{one}").unwrap();
    let (status, body4) = read_response(&mut reader);
    assert_eq!(status, 200, "{body4}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        read_timeout_ms: 500,
        ..ServerConfig::default()
    });

    // A keep-alive connection with one answered request stays open...
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = contains_body(Q1, Q2);
    write!(
        stream,
        "POST /v1/contains HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, body) = read_response(&mut BufReader::new(&mut stream));
    assert_eq!(status, 200, "{body}");

    // ...and shutdown still completes: the worker finishes the idle
    // connection (read timeout) and run() returns Ok.
    handle.shutdown();
    join.join().expect("join").expect("clean drain");
}
