//! End-to-end tests of a running in-process `flqd`: real sockets, real
//! HTTP, real decisions — only the process boundary is elided.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use flogic_serve::{Server, ServerConfig, ServerHandle};

/// Binds a server with `config`, runs it on a background thread, and
/// returns its address, its handle, and the join handle of `run`.
fn start(
    mut config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    thread::JoinHandle<std::io::Result<()>>,
) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

/// One full HTTP/1.1 exchange on a fresh connection; returns
/// `(status, body)`.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

const Q1: &str = "q(X, Z) :- sub(X, Y), sub(Y, Z).";
const Q2: &str = "p(X, Z) :- sub(X, Z).";

fn contains_body(q1: &str, q2: &str) -> String {
    format!("{{\"q1\":{},\"q2\":{}}}", serde_lite(q1), serde_lite(q2))
}

/// Just enough JSON string quoting for the test queries (no escapes
/// needed in the surface syntax used here).
fn serde_lite(s: &str) -> String {
    format!("\"{s}\"")
}

#[test]
fn contains_and_batch_answer_real_verdicts() {
    let (addr, handle, join) = start(ServerConfig::default());

    // Cold single decision: holds.
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q1, Q2));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":\"holds\""), "{body}");

    // Reverse direction: not_holds.
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q2, Q1));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":\"not_holds\""), "{body}");

    // Batch sharing one q1; results in request order.
    let batch = format!(
        "{{\"pairs\":[[{q1},{q2}],[{q1},{q1}],[{q2},{q1}]]}}",
        q1 = serde_lite(Q1),
        q2 = serde_lite(Q2)
    );
    let (status, body) = exchange(addr, "POST", "/v1/contains_batch", &batch);
    assert_eq!(status, 200, "{body}");
    let verdicts: Vec<&str> = body.matches("\"verdict\":\"holds\"").collect();
    assert_eq!(verdicts.len(), 2, "{body}");
    assert!(body.contains("\"verdict\":\"not_holds\""), "{body}");

    // Warm repeat of the first pair still answers identically.
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q1, Q2));
    assert_eq!(status, 200);
    assert!(body.contains("\"verdict\":\"holds\""), "{body}");

    // Metrics and profile report the work.
    let (status, metrics) = exchange(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("flq_chase_runs "), "{metrics}");
    assert!(metrics.contains("flqd_requests_total "), "{metrics}");
    assert!(metrics.contains("flqd_snapshot_hits "), "{metrics}");
    let (status, profile) = exchange(addr, "GET", "/profile", "");
    assert_eq!(status, 200);
    assert!(profile.contains("\"rule_firings\":["), "{profile}");

    handle.shutdown();
    join.join().expect("join").expect("clean drain");
}

#[test]
fn exhausted_decisions_are_200_with_exhausted_verdict() {
    let (addr, handle, join) = start(ServerConfig::default());
    let body = format!(
        "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":1,\"analysis\":false}}",
        serde_lite(Q1),
        serde_lite(Q2)
    );
    let (status, body) = exchange(addr, "POST", "/v1/contains", &body);
    assert_eq!(
        status, 200,
        "exhaustion is an outcome, not an error: {body}"
    );
    assert!(body.contains("\"verdict\":\"exhausted\""), "{body}");
    assert!(body.contains("\"reason\":\"conjuncts\""), "{body}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn bad_requests_get_typed_errors() {
    let (addr, handle, join) = start(ServerConfig {
        max_body_bytes: 256,
        ..ServerConfig::default()
    });

    let (status, body) = exchange(addr, "POST", "/v1/contains", "not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"parse_error\""), "{body}");

    let (status, body) = exchange(
        addr,
        "POST",
        "/v1/contains",
        &contains_body("q(X) :- nonsense", Q2),
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"parse_error\""), "{body}");

    // Arity mismatch is its own code.
    let (status, body) = exchange(
        addr,
        "POST",
        "/v1/contains",
        &contains_body("q(X) :- sub(X, Y).", Q2),
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"arity_mismatch\""), "{body}");

    let (status, body) = exchange(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"code\":\"not_found\""), "{body}");

    let (status, body) = exchange(addr, "GET", "/v1/contains", "");
    assert_eq!(status, 405);
    assert!(body.contains("\"code\":\"method_not_allowed\""), "{body}");

    let oversized = contains_body(&"x".repeat(500), Q2);
    let (status, body) = exchange(addr, "POST", "/v1/contains", &oversized);
    assert_eq!(status, 413);
    assert!(body.contains("\"code\":\"payload_too_large\""), "{body}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    // One worker, queue depth one. Tie up the worker with an idle
    // connection (it blocks reading the request until the read timeout),
    // park a second connection in the queue, and watch the third bounce.
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout_ms: 2_000,
        ..ServerConfig::default()
    });

    let hold_worker = TcpStream::connect(addr).expect("connect");
    thread::sleep(Duration::from_millis(200)); // worker picks it up
    let hold_queue = TcpStream::connect(addr).expect("connect");
    thread::sleep(Duration::from_millis(200)); // it sits in the queue

    let mut rejected = TcpStream::connect(addr).expect("connect");
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The 503 arrives before we even send a request: backpressure is
    // applied at accept time.
    let mut raw = String::new();
    rejected.read_to_string(&mut raw).expect("read 503");
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.to_ascii_lowercase().contains("retry-after: 1"), "{raw}");
    assert!(raw.contains("\"code\":\"overloaded\""), "{raw}");

    // Release the parked connections; the server recovers and serves.
    drop(hold_worker);
    drop(hold_queue);
    thread::sleep(Duration::from_millis(100));
    let (status, body) = exchange(addr, "POST", "/v1/contains", &contains_body(Q1, Q2));
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        read_timeout_ms: 500,
        ..ServerConfig::default()
    });

    // A keep-alive connection with one answered request stays open...
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = contains_body(Q1, Q2);
    write!(
        stream,
        "POST /v1/contains HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");

    // ...and shutdown still completes: the worker finishes the idle
    // connection (read timeout) and run() returns Ok.
    handle.shutdown();
    join.join().expect("join").expect("clean drain");
}
