//! Static analysis for F-logic Lite programs and queries.
//!
//! The paper's decidability result rests on syntactic restrictions (the
//! F-logic Lite fragment) and on structural properties of the `Σ_FL`
//! chase. This crate makes those invariants *visible before anything
//! runs*, in three layers:
//!
//! 1. **Well-formedness lints** ([`analyze_program`], [`lint_source`]):
//!    coded diagnostics `FL001`–`FL007` with `line:col` spans — singleton
//!    variables, anonymous `_` in query heads, conflicting or duplicate
//!    cardinality/signature declarations, references to undeclared
//!    vocabulary, shadowed signatures.
//! 2. **Dependency-graph analysis** (via [`flogic_model::DepGraph`]):
//!    which predicates are derivable from a program's facts, and which
//!    query atoms are *dead* — statically unsatisfiable (`FL007`).
//! 3. **Containment fast-paths** ([`QueryAnalysis`], [`direct_unsat`]):
//!    sound early answers for `q1 ⊆_ΣFL q2` — early `false` when `q2`
//!    needs a predicate the chase of `q1` can never produce, early `true`
//!    when `q1` carries a visible ρ4 violation and is unsatisfiable.
//!    `flogic-core::contains_with` consults these before chasing (toggle
//!    with `ContainmentOptions::analysis`).
//! 4. **Σ-admission** ([`admit_sigma`], [`classify_rule_set`]): the
//!    constraint-set gate for user-supplied `.sigma` rule files. It
//!    validates rules against the `P_FL` schema (`FL010`/`FL011`,
//!    errors), classifies the set into the chase-termination taxonomy —
//!    weak acyclicity, guardedness, stickiness — with `FL012`–`FL014`
//!    warnings for the failing classes, and derives a per-class chase
//!    level bound ([`SigmaAdmission::level_bound`]). A set is admitted
//!    when it is error-free and at least one class holds.
//!
//! The diagnostic surface is the `flq lint` subcommand:
//!
//! ```text
//! $ flq lint program.fl
//! program.fl:3:7: warning[FL001]: variable `X` occurs only once in `q`; …
//! $ flq lint --sigma rules.sigma
//! rules.sigma:2:11: error[FL010]: unknown predicate `frobnicate`; …
//! ```

mod admission;
mod diagnostics;
mod fastpath;
mod lints;

pub use admission::{admit_sigma, classify_rule_set, SigmaAdmission, SigmaClass};
pub use diagnostics::{DiagCode, Diagnostic, Severity};
pub use fastpath::{direct_unsat, QueryAnalysis};
pub use lints::{analyze_program, lint_source};

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::Pos;

    fn codes(src: &str) -> Vec<DiagCode> {
        lint_source(src).unwrap().iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let src = "john:student. student::person. john[age->33].\n\
                   person[age {0:1} *=> number].\n\
                   q(X) :- member(X, student), data(X, age, V), member(V, number).";
        assert_eq!(codes(src), vec![]);
    }

    #[test]
    fn fl001_singleton_variable_positive_and_negative() {
        // `Y` occurs once in the body — flagged at its molecule.
        let diags = lint_source("q(X) :- member(X, C), sub(C, D), member(Y, D).").unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Fl001SingletonVariable);
        assert_eq!(diags[0].pos, Pos { line: 1, col: 34 });
        assert!(diags[0].message.contains("`Y`"));
        // Underscore prefix silences it; repeated use silences it.
        assert_eq!(
            codes("q(X) :- member(X, C), sub(C, D), member(_Y, D)."),
            vec![]
        );
        assert_eq!(codes("q(X) :- member(X, C), sub(C, C)."), vec![]);
    }

    #[test]
    fn fl002_anonymous_head_positive_and_negative() {
        let diags = lint_source("q(X, _) :- member(X, C), sub(C, D).").unwrap();
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::Fl002AnonymousInHead
                && d.severity == Severity::Error
                && d.pos == Pos { line: 1, col: 6 }));
        assert_eq!(codes("q(X, D) :- member(X, C), sub(C, D)."), vec![]);
    }

    #[test]
    fn fl003_conflicting_cardinality_positive_and_negative() {
        let src = "person[age {0:1} *=> number].\nperson[age {1:*} *=> number].";
        let diags = lint_source(src).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::Fl003ConflictingCardinality
                && d.pos == Pos { line: 2, col: 8 }));
        // Different attributes: fine.
        assert_eq!(
            codes("person[age {0:1} *=> number]. person[name {1:*} *=> string]."),
            vec![]
        );
    }

    #[test]
    fn fl004_duplicate_declaration_positive_and_negative() {
        let diags = lint_source("john:student.\njohn:student.").unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Fl004DuplicateDeclaration);
        assert_eq!(diags[0].pos, Pos { line: 2, col: 1 });
        assert_eq!(codes("john:student. mary:student."), vec![]);
    }

    #[test]
    fn fl005_undeclared_reference_positive_and_negative() {
        let src = "john:student.\nq(X) :- member(X, teacher).";
        let diags = lint_source(src).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::Fl005UndeclaredReference
                && d.message.contains("teacher")
                && d.pos == Pos { line: 2, col: 9 }));
        assert!(codes("john:student. q(X) :- member(X, student).")
            .iter()
            .all(|c| *c != DiagCode::Fl005UndeclaredReference));
        // No facts at all: nothing to check against.
        assert_eq!(codes("q(X) :- member(X, teacher)."), vec![]);
    }

    #[test]
    fn fl006_shadowed_signature_positive_and_negative() {
        let src = "person[age *=> number].\nperson[age *=> string].";
        let diags = lint_source(src).unwrap();
        assert!(diags.iter().any(
            |d| d.code == DiagCode::Fl006ShadowedSignature && d.pos == Pos { line: 2, col: 8 }
        ));
        assert_eq!(
            codes("person[age *=> number]. person[name *=> string]."),
            vec![]
        );
    }

    #[test]
    fn fl007_dead_query_atom_positive_and_negative() {
        // Facts only declare sub; member is underivable from sub alone.
        let src = "a::b.\nq(X) :- member(X, a), sub(X, b).";
        let diags = lint_source(src).unwrap();
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::Fl007DeadQueryAtom)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].pos, Pos { line: 2, col: 9 });
        assert!(dead[0].message.contains("member"));
        // With a member fact the atom is live again.
        assert!(codes("a::b. x:a. q(X) :- member(X, a), sub(X, b).")
            .iter()
            .all(|c| *c != DiagCode::Fl007DeadQueryAtom));
    }

    #[test]
    fn goals_are_linted_for_dead_atoms_but_not_singletons() {
        // Goal variables export to the implicit head; V alone is fine.
        let src = "a::b. ?- sub(a, V).";
        assert_eq!(codes(src), vec![]);
        let src = "a::b. ?- member(X, a).";
        assert_eq!(codes(src), vec![DiagCode::Fl007DeadQueryAtom]);
    }

    #[test]
    fn diagnostics_sorted_by_position() {
        let src = "person[age *=> number].\nperson[age *=> string].\nq(X) :- member(X, ghost).";
        let diags = lint_source(src).unwrap();
        assert!(diags.len() >= 2);
        for w in diags.windows(2) {
            assert!((w[0].pos, w[0].code) <= (w[1].pos, w[1].code));
        }
    }

    #[test]
    fn parse_errors_are_propagated_not_swallowed() {
        assert!(lint_source("q(X) :- member(X, $).").is_err());
    }
}
