//! Layer 3: containment fast-paths.
//!
//! Two sound shortcuts let the `flogic-core` decider answer without
//! materializing a chase:
//!
//! 1. **Early `false`** ([`QueryAnalysis::refutes_hom`]): the chase of
//!    `q1` only ever contains atoms whose predicate lies in the
//!    predicate-level derivability closure of `q1`'s body (the closure
//!    over-approximates the chase, see
//!    [`DepGraph::derivable_preds`]). If `q2` has a body atom outside the
//!    closure, no homomorphism `body(q2) → chase(q1)` can exist — the
//!    containment fails, *provided the chase cannot fail* (a failed chase
//!    would make the containment vacuously true instead). The
//!    cannot-fail guard is itself decided statically, see
//!    [`QueryAnalysis::chase_may_fail`].
//! 2. **Early `true`** ([`direct_unsat`]): when `q1`'s body already
//!    contains a ρ4 violation in plain sight — two data atoms
//!    `data(o,a,v)`/`data(o,a,w)` with syntactically equal `o`,`a`,
//!    distinct constant values, and functionality of `a` on `o` asserted
//!    (directly, or one ρ12 step away via `member(o,c), funct(a,c)`) —
//!    the chase fails in its very first Datalog/EGD phase, at every level
//!    bound. `q1` is unsatisfiable w.r.t. `Σ_FL`, hence vacuously
//!    contained in every query of its arity.
//!
use flogic_model::{ConjunctiveQuery, DepGraph, Pred, PredSet, RuleSet};
use flogic_term::Term;

/// Static facts about one (left-hand) query, computed once and reusable
/// across many containment candidates.
#[derive(Clone, Debug)]
pub struct QueryAnalysis {
    closure: PredSet,
    distinct_constants: usize,
    egd_may_fire: bool,
}

impl QueryAnalysis {
    /// Analyzes `q1` (the contained side of `q1 ⊆ q2`) against the
    /// built-in `Σ_FL`.
    pub fn new(q1: &ConjunctiveQuery) -> QueryAnalysis {
        QueryAnalysis::for_rules(q1, RuleSet::sigma_fl())
    }

    /// Analyzes `q1` against an arbitrary (admitted) rule set: the
    /// derivability closure uses the set's own dependency graph, and the
    /// cannot-fail guard asks whether *any* of its EGDs could fire (all
    /// of an EGD's body predicates derivable). For `Σ_FL` this reduces to
    /// exactly the ρ4 check [`QueryAnalysis::new`] always made (ρ4's body
    /// predicates are `data` and `funct`).
    pub fn for_rules(q1: &ConjunctiveQuery, sigma: &RuleSet) -> QueryAnalysis {
        let seed: PredSet = q1.body().iter().map(flogic_model::Atom::pred).collect();
        let closure = if sigma.is_sigma_fl() {
            DepGraph::sigma_fl().derivable_preds(seed)
        } else {
            DepGraph::for_rules(sigma.rules()).derivable_preds(seed)
        };
        let egd_may_fire = sigma
            .egds()
            .iter()
            .any(|e| e.body.iter().all(|a| closure.contains(a.pred())));
        let mut constants: Vec<Term> = q1
            .body()
            .iter()
            .flat_map(|a| a.args().iter().copied())
            .filter(|t| t.is_const())
            .collect();
        constants.sort();
        constants.dedup();
        QueryAnalysis {
            closure,
            distinct_constants: constants.len(),
            egd_may_fire,
        }
    }

    /// The predicate-level derivability closure of the query body: every
    /// predicate `chase(q1)` can ever contain lies in this set.
    pub fn derivable(&self) -> PredSet {
        self.closure
    }

    /// Could `chase(q1)` possibly fail (ρ4 equating two distinct
    /// constants)? `false` is a *proof* that it cannot; `true` only means
    /// the static analysis cannot rule it out.
    ///
    /// An EGD needs its full body derivable in the chase and two
    /// **distinct constants** in the equated value positions (merging a
    /// variable or null always succeeds). So the chase provably cannot
    /// fail when no EGD has all its body predicates in the closure (for
    /// `Σ_FL`: ρ4's `data` or `funct` underivable), or when the body
    /// mentions at most one distinct constant.
    pub fn chase_may_fail(&self) -> bool {
        self.egd_may_fire && self.distinct_constants >= 2
    }

    /// Sound early-`false` check: `true` means `q1 ⊄ q2` is certain —
    /// `q2` has a body atom whose predicate can never appear in
    /// `chase(q1)`, and the chase provably cannot fail (so the
    /// containment is not vacuous either).
    pub fn refutes_hom(&self, q2: &ConjunctiveQuery) -> bool {
        !self.chase_may_fail() && self.dead_atoms(q2).next().is_some()
    }

    /// Indices of `q2` body atoms whose predicate is outside the closure:
    /// atoms no homomorphism into `chase(q1)` can cover.
    pub fn dead_atoms<'a>(&'a self, q2: &'a ConjunctiveQuery) -> impl Iterator<Item = usize> + 'a {
        q2.body()
            .iter()
            .enumerate()
            .filter(|(_, a)| !self.closure.contains(a.pred()))
            .map(|(i, _)| i)
    }
}

/// Detects a directly visible ρ4 violation in `q`'s body (see module
/// docs): returns the two distinct constants the chase would be forced to
/// equate, or `None` when no violation is syntactically present.
///
/// A `Some` answer is sound at **every** level bound: the violation fires
/// in the Datalog/EGD phase (`chase⁻`), which every bounded chase runs to
/// fixpoint before (and between) ρ5 levels.
pub fn direct_unsat(q: &ConjunctiveQuery) -> Option<(Term, Term)> {
    let body = q.body();
    let functional = |a: Term, o: Term| {
        body.iter()
            .any(|f| f.pred() == Pred::Funct && f.arg(0) == a && f.arg(1) == o)
            || body.iter().any(|m| {
                m.pred() == Pred::Member
                    && m.arg(0) == o
                    && body
                        .iter()
                        .any(|f| f.pred() == Pred::Funct && f.arg(0) == a && f.arg(1) == m.arg(1))
            })
    };
    for (i, d1) in body.iter().enumerate() {
        if d1.pred() != Pred::Data {
            continue;
        }
        for d2 in &body[i + 1..] {
            if d2.pred() != Pred::Data || d2.arg(0) != d1.arg(0) || d2.arg(1) != d1.arg(1) {
                continue;
            }
            let (v, w) = (d1.arg(2), d2.arg(2));
            if v.is_const() && w.is_const() && v != w && functional(d1.arg(1), d1.arg(0)) {
                return Some((v, w));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn closure_of_sub_only_query_is_sub() {
        let a = QueryAnalysis::new(&q("q(X, Z) :- sub(X, Y), sub(Y, Z)."));
        assert!(a.derivable().contains(Pred::Sub));
        assert_eq!(a.derivable().len(), 1);
        assert!(!a.chase_may_fail());
    }

    #[test]
    fn refutes_hom_on_unreachable_predicate() {
        let a = QueryAnalysis::new(&q("q(X, Z) :- sub(X, Y), sub(Y, Z)."));
        // member is not derivable from sub alone.
        assert!(a.refutes_hom(&q("p(X, Z) :- member(X, Z).")));
        // but sub itself of course is.
        assert!(!a.refutes_hom(&q("p(X, Z) :- sub(X, Z).")));
    }

    #[test]
    fn no_refutation_when_chase_may_fail() {
        // Two distinct constants + data + funct: the chase might fail, so
        // even a q2 with an unreachable predicate is NOT refuted (it could
        // be vacuously contained).
        let a = QueryAnalysis::new(&q("q() :- data(o, a, 1), data(o, b, 2), funct(a, o)."));
        assert!(a.chase_may_fail());
        assert!(!a.refutes_hom(&q("p() :- sub(X, Y).")));
    }

    #[test]
    fn mandatory_feeds_data_via_rho5() {
        let a = QueryAnalysis::new(&q("q(A) :- mandatory(A, c)."));
        assert!(a.derivable().contains(Pred::Data));
        assert!(!a.refutes_hom(&q("p(A) :- data(X, A, V).")));
        // type is not derivable from mandatory alone.
        assert!(a.refutes_hom(&q("p(A) :- type(X, A, V).")));
    }

    #[test]
    fn dead_atoms_are_reported_by_index() {
        let a = QueryAnalysis::new(&q("q(X) :- member(X, c)."));
        let q2 = q("p(X) :- member(X, c), sub(c, D), member(X, D).");
        let dead: Vec<usize> = a.dead_atoms(&q2).collect();
        assert_eq!(dead, vec![1], "only the sub atom is underivable");
    }

    #[test]
    fn direct_unsat_finds_plain_rho4_clash() {
        let (l, r) = direct_unsat(&q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).")).unwrap();
        assert_ne!(l, r);
        assert!(l.is_const() && r.is_const());
    }

    #[test]
    fn direct_unsat_sees_one_step_rho12() {
        // funct on the class + membership: ρ12 gives funct on the object.
        assert!(direct_unsat(&q(
            "q() :- data(o, a, 1), data(o, a, 2), member(o, c), funct(a, c)."
        ))
        .is_some());
    }

    #[test]
    fn direct_unsat_negative_cases() {
        // Different attributes: no clash.
        assert!(direct_unsat(&q("q() :- data(o, a, 1), data(o, b, 2), funct(a, o).")).is_none());
        // Same value: no clash.
        assert!(direct_unsat(&q("q() :- data(o, a, 1), data(o, a, 1), funct(a, o).")).is_none());
        // No functionality: no clash.
        assert!(direct_unsat(&q("q() :- data(o, a, 1), data(o, a, 2).")).is_none());
        // Variable value: merging succeeds, no failure.
        assert!(direct_unsat(&q("q(V) :- data(o, a, V), data(o, a, 2), funct(a, o).")).is_none());
    }
}
