//! Layer 1 + 2: well-formedness lints and dead-atom analysis over the
//! surface AST.
//!
//! The entry point is [`analyze_program`]; [`lint_source`] parses first.
//! Diagnostics come back sorted by position then code, so output is
//! deterministic and line-oriented tools can diff it.

use std::collections::{HashMap, HashSet};

use flogic_model::{DepGraph, Pred, PredSet};
use flogic_syntax::{
    parse_ast, AstQuery, AstTerm, Card, Molecule, Pos, Program, Spec, Statement, SyntaxError,
};

use crate::diagnostics::{DiagCode, Diagnostic};

/// Parses `src` and analyzes the resulting program.
///
/// A parse error is returned as `Err`; it is not converted into a
/// diagnostic because its position/kind already say everything.
pub fn lint_source(src: &str) -> Result<Vec<Diagnostic>, SyntaxError> {
    Ok(analyze_program(&parse_ast(src)?))
}

/// Runs every lint over a parsed program and returns the findings sorted
/// by source position, then code.
pub fn analyze_program(program: &Program) -> Vec<Diagnostic> {
    let facts = FactInfo::collect(program);
    let mut out = Vec::new();
    out.extend(facts.diagnostics.iter().cloned());
    for stmt in &program.statements {
        match stmt {
            Statement::Query(q) => {
                lint_query_vars(q, &mut out);
                lint_body(&q.body, &facts, &mut out);
            }
            Statement::Goal(body) => {
                // A goal's head is implicit (every named variable), so the
                // singleton/anonymous-head lints do not apply.
                lint_body(body, &facts, &mut out);
            }
            Statement::Fact(_) => {}
        }
    }
    out.sort_by_key(|d| (d.pos, d.code));
    out
}

/// What the fact statements of a program declare, plus the diagnostics
/// found while collecting them (FL003/FL004/FL006).
struct FactInfo {
    /// Any fact statements at all? FL005/FL007 are skipped otherwise —
    /// a file of pure queries declares no vocabulary to check against.
    any: bool,
    /// Every constant appearing anywhere in a fact.
    declared: HashSet<String>,
    /// Predicates asserted by the facts (seed for derivability).
    preds: PredSet,
    /// FL003/FL004/FL006 findings.
    diagnostics: Vec<Diagnostic>,
}

impl FactInfo {
    fn collect(program: &Program) -> FactInfo {
        // (class, attr) → earlier signature declarations (card, typ, pos).
        type SigDecls = Vec<(Option<Card>, Option<String>, Pos)>;
        let mut info = FactInfo {
            any: false,
            declared: HashSet::new(),
            preds: PredSet::EMPTY,
            diagnostics: Vec::new(),
        };
        let mut signatures: HashMap<(String, String), SigDecls> = HashMap::new();
        // Canonical rendering of each declared unit, for FL004.
        let mut seen_decls: HashSet<String> = HashSet::new();
        for stmt in &program.statements {
            let Statement::Fact(m) = stmt else { continue };
            info.any = true;
            for (p, _) in molecule_preds(m) {
                info.preds.insert(p);
            }
            note_constants(m, &mut info.declared);
            for (key, pos) in decl_units(m) {
                if !seen_decls.insert(key.clone()) {
                    info.diagnostics.push(Diagnostic::new(
                        DiagCode::Fl004DuplicateDeclaration,
                        pos,
                        format!("`{key}` is already declared; this repetition is redundant"),
                    ));
                }
            }
            let Molecule::Specs { obj, specs, .. } = m else {
                continue;
            };
            let AstTerm::Const(class) = obj else { continue };
            for spec in specs {
                let Spec::Signature {
                    attr: AstTerm::Const(attr),
                    card,
                    typ,
                    pos,
                } = spec
                else {
                    continue;
                };
                let typ_name = match typ {
                    AstTerm::Const(t) => Some(t.clone()),
                    _ => None,
                };
                let prev = signatures.entry((class.clone(), attr.clone())).or_default();
                for (pcard, ptyp, _) in prev.iter() {
                    if let (Some(a), Some(b)) = (pcard, card) {
                        if a != b {
                            info.diagnostics.push(Diagnostic::new(
                                DiagCode::Fl003ConflictingCardinality,
                                *pos,
                                format!(
                                    "attribute `{attr}` on `{class}` is declared both {a} and \
                                     {b}; together they mean \"exactly one value\", which is \
                                     usually a redeclaration mistake"
                                ),
                            ));
                        }
                    }
                    if let (Some(a), Some(b)) = (ptyp, &typ_name) {
                        if a != b {
                            info.diagnostics.push(Diagnostic::new(
                                DiagCode::Fl006ShadowedSignature,
                                *pos,
                                format!(
                                    "signature `{class}[{attr} *=> {b}]` shadows the earlier \
                                     declaration with type `{a}`"
                                ),
                            ));
                        }
                    }
                }
                prev.push((*card, typ_name, *pos));
            }
        }
        info
    }
}

/// FL001 + FL002: variable hygiene of one query.
fn lint_query_vars(q: &AstQuery, out: &mut Vec<Diagnostic>) {
    for (t, pos) in q.head.iter().zip(&q.head_pos) {
        if matches!(t, AstTerm::Anon) {
            out.push(Diagnostic::new(
                DiagCode::Fl002AnonymousInHead,
                *pos,
                format!(
                    "anonymous `_` in the head of `{}`: each `_` is a fresh variable, so the \
                     head cannot be bound by the body",
                    q.name
                ),
            ));
        }
    }
    // First position and occurrence count of every named variable.
    let mut occurrences: Vec<(String, Pos)> = Vec::new();
    for (t, pos) in q.head.iter().zip(&q.head_pos) {
        note_var(t, *pos, &mut occurrences);
    }
    for m in &q.body {
        for (t, pos) in molecule_terms(m) {
            note_var(t, pos, &mut occurrences);
        }
    }
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for (name, _) in &occurrences {
        *counts.entry(name.as_str()).or_default() += 1;
    }
    let mut flagged: HashSet<&str> = HashSet::new();
    for (name, pos) in &occurrences {
        if counts[name.as_str()] == 1 && !name.starts_with('_') && flagged.insert(name) {
            out.push(Diagnostic::new(
                DiagCode::Fl001SingletonVariable,
                *pos,
                format!(
                    "variable `{name}` occurs only once in `{}`; prefix it with `_` (or use \
                     `_`) if that is intentional",
                    q.name
                ),
            ));
        }
    }
}

/// FL005 + FL007 over a query/goal body, relative to the fact base.
fn lint_body(body: &[Molecule], facts: &FactInfo, out: &mut Vec<Diagnostic>) {
    if !facts.any {
        return;
    }
    let closure = DepGraph::sigma_fl().derivable_preds(facts.preds);
    for m in body {
        for (name, pos) in schema_constants(m) {
            if !facts.declared.contains(name) {
                out.push(Diagnostic::new(
                    DiagCode::Fl005UndeclaredReference,
                    pos,
                    format!("`{name}` is not declared by any fact in this program"),
                ));
            }
        }
        for (p, pos) in molecule_preds(m) {
            if !closure.contains(p) {
                out.push(Diagnostic::new(
                    DiagCode::Fl007DeadQueryAtom,
                    pos,
                    format!(
                        "no `{}` atom is derivable from the facts (Σ_FL dependency graph): \
                         this atom can never be satisfied, so the query is statically empty",
                        p.name()
                    ),
                ));
            }
        }
    }
}

fn note_var(t: &AstTerm, pos: Pos, occurrences: &mut Vec<(String, Pos)>) {
    if let AstTerm::Var(name) = t {
        occurrences.push((name.clone(), pos));
    }
}

/// Every term of a molecule, with the best position span we track for it
/// (spec terms get the spec's span, everything else the molecule's).
fn molecule_terms(m: &Molecule) -> Vec<(&AstTerm, Pos)> {
    let pos = m.pos();
    match m {
        Molecule::Isa { obj, class, .. } => vec![(obj, pos), (class, pos)],
        Molecule::Sub { sub, sup, .. } => vec![(sub, pos), (sup, pos)],
        Molecule::Specs { obj, specs, .. } => {
            let mut v = vec![(obj, pos)];
            for s in specs {
                match s {
                    Spec::DataVal { attr, value, pos } => {
                        v.push((attr, *pos));
                        v.push((value, *pos));
                    }
                    Spec::Signature { attr, typ, pos, .. } => {
                        v.push((attr, *pos));
                        v.push((typ, *pos));
                    }
                }
            }
            v
        }
        Molecule::Pred { args, .. } => args.iter().map(|a| (a, pos)).collect(),
    }
}

/// The `P_FL` predicates a molecule expands to (mirrors `translate.rs`),
/// with the span to blame per expanded atom. Unknown predicate names and
/// arities are skipped — translation rejects them with a proper error.
fn molecule_preds(m: &Molecule) -> Vec<(Pred, Pos)> {
    match m {
        Molecule::Isa { pos, .. } => vec![(Pred::Member, *pos)],
        Molecule::Sub { pos, .. } => vec![(Pred::Sub, *pos)],
        Molecule::Specs { specs, .. } => {
            let mut v = Vec::new();
            for s in specs {
                match s {
                    Spec::DataVal { pos, .. } => v.push((Pred::Data, *pos)),
                    Spec::Signature { card, typ, pos, .. } => {
                        match card {
                            Some(Card::ZeroOne) => v.push((Pred::Funct, *pos)),
                            Some(Card::OneStar) => v.push((Pred::Mandatory, *pos)),
                            None => {}
                        }
                        // `*=> _` with a cardinality asserts no type atom.
                        if !(matches!(typ, AstTerm::Anon) && card.is_some()) {
                            v.push((Pred::Type, *pos));
                        }
                    }
                }
            }
            v
        }
        Molecule::Pred { name, pos, .. } => match Pred::from_name(name) {
            Some(p) => vec![(p, *pos)],
            None => Vec::new(),
        },
    }
}

/// Constants sitting in class/attribute positions of a query molecule —
/// the vocabulary FL005 checks against the fact base.
fn schema_constants(m: &Molecule) -> Vec<(&str, Pos)> {
    fn c(t: &AstTerm) -> Option<&str> {
        match t {
            AstTerm::Const(s) => Some(s),
            _ => None,
        }
    }
    let pos = m.pos();
    match m {
        Molecule::Isa { class, .. } => c(class).map(|s| (s, pos)).into_iter().collect(),
        Molecule::Sub { sub, sup, .. } => [c(sub), c(sup)]
            .into_iter()
            .flatten()
            .map(|s| (s, pos))
            .collect(),
        Molecule::Specs { specs, .. } => specs
            .iter()
            .filter_map(|s| c(s.attr()).map(|a| (a, s.pos())))
            .collect(),
        Molecule::Pred {
            name, args, pos, ..
        } => {
            // Class/attribute argument positions of each P_FL predicate.
            let check: &[usize] = match Pred::from_name(name) {
                Some(Pred::Member | Pred::Data) => &[1],
                Some(Pred::Sub | Pred::Mandatory | Pred::Funct) => &[0, 1],
                Some(Pred::Type) => &[1, 2],
                None => &[],
            };
            check
                .iter()
                .filter_map(|&i| args.get(i).and_then(c).map(|s| (s, *pos)))
                .collect()
        }
    }
}

/// Every constant a fact mentions, recorded as declared vocabulary.
fn note_constants(m: &Molecule, declared: &mut HashSet<String>) {
    for (t, _) in molecule_terms(m) {
        if let AstTerm::Const(s) = t {
            declared.insert(s.clone());
        }
    }
}

/// Canonical renderings of the declaration units of a fact, for FL004.
/// A multi-spec molecule yields one unit per spec, so
/// `john[a->1, a->1]` flags the second spec.
fn decl_units(m: &Molecule) -> Vec<(String, Pos)> {
    match m {
        Molecule::Isa { obj, class, pos } => vec![(format!("{obj} : {class}"), *pos)],
        Molecule::Sub { sub, sup, pos } => vec![(format!("{sub} :: {sup}"), *pos)],
        Molecule::Specs { obj, specs, .. } => specs
            .iter()
            .map(|s| match s {
                Spec::DataVal { attr, value, pos } => (format!("{obj}[{attr} -> {value}]"), *pos),
                Spec::Signature {
                    attr,
                    card,
                    typ,
                    pos,
                } => {
                    let card = card.map(|c| format!("{c} ")).unwrap_or_default();
                    (format!("{obj}[{attr} {card}*=> {typ}]"), *pos)
                }
            })
            .collect(),
        Molecule::Pred { name, args, pos } => {
            let args: Vec<String> = args.iter().map(std::string::ToString::to_string).collect();
            vec![(format!("{name}({})", args.join(", ")), *pos)]
        }
    }
}
