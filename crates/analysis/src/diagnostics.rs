//! Structured diagnostics with stable codes and source spans.

use std::fmt;

use flogic_syntax::Pos;

/// Stable diagnostic codes emitted by the analyzer.
///
/// Codes are append-only: a code, once published, never changes meaning.
/// See `DESIGN.md` for the full table with examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagCode {
    /// A named variable occurs exactly once in a query (likely a typo).
    Fl001SingletonVariable,
    /// The anonymous variable `_` appears in a query head.
    Fl002AnonymousInHead,
    /// The same `(class, attribute)` signature is declared both `{0:1}`
    /// and `{1:*}` — the combination means "exactly one", which is almost
    /// always a redeclaration mistake.
    Fl003ConflictingCardinality,
    /// A fact is declared twice (the second occurrence is redundant).
    Fl004DuplicateDeclaration,
    /// A query references a class/attribute constant that the fact base
    /// never declares.
    Fl005UndeclaredReference,
    /// The same `(class, attribute)` signature is redeclared with a
    /// different type, shadowing the earlier declaration.
    Fl006ShadowedSignature,
    /// A query atom whose predicate is not derivable from the fact base:
    /// the atom can never be satisfied and the query is statically empty.
    Fl007DeadQueryAtom,
    /// A `.sigma` rule uses a predicate outside the fixed `P_FL` schema,
    /// or with the wrong number of arguments.
    Fl010UnknownPredicate,
    /// A `.sigma` rule is unsafe: an EGD side that is not a body variable,
    /// more than one existential head variable, or an oversized rule set.
    Fl011UnsafeRule,
    /// The rule set is not weakly acyclic: its dependency graph has a
    /// cycle through an existential edge, so the chase may not terminate.
    Fl012NotWeaklyAcyclic,
    /// An existential rule is unguarded: no single body atom covers all
    /// of its frontier variables.
    Fl013NotGuarded,
    /// The rule set is not sticky: a marked variable occurs more than
    /// once in some rule body.
    Fl014NotSticky,
}

impl DiagCode {
    /// All codes, in numeric order.
    pub const ALL: [DiagCode; 12] = [
        DiagCode::Fl001SingletonVariable,
        DiagCode::Fl002AnonymousInHead,
        DiagCode::Fl003ConflictingCardinality,
        DiagCode::Fl004DuplicateDeclaration,
        DiagCode::Fl005UndeclaredReference,
        DiagCode::Fl006ShadowedSignature,
        DiagCode::Fl007DeadQueryAtom,
        DiagCode::Fl010UnknownPredicate,
        DiagCode::Fl011UnsafeRule,
        DiagCode::Fl012NotWeaklyAcyclic,
        DiagCode::Fl013NotGuarded,
        DiagCode::Fl014NotSticky,
    ];

    /// The stable code string, e.g. `"FL001"`.
    pub const fn code(self) -> &'static str {
        match self {
            DiagCode::Fl001SingletonVariable => "FL001",
            DiagCode::Fl002AnonymousInHead => "FL002",
            DiagCode::Fl003ConflictingCardinality => "FL003",
            DiagCode::Fl004DuplicateDeclaration => "FL004",
            DiagCode::Fl005UndeclaredReference => "FL005",
            DiagCode::Fl006ShadowedSignature => "FL006",
            DiagCode::Fl007DeadQueryAtom => "FL007",
            DiagCode::Fl010UnknownPredicate => "FL010",
            DiagCode::Fl011UnsafeRule => "FL011",
            DiagCode::Fl012NotWeaklyAcyclic => "FL012",
            DiagCode::Fl013NotGuarded => "FL013",
            DiagCode::Fl014NotSticky => "FL014",
        }
    }

    /// One-line description of what the code flags.
    pub const fn title(self) -> &'static str {
        match self {
            DiagCode::Fl001SingletonVariable => "singleton variable",
            DiagCode::Fl002AnonymousInHead => "anonymous `_` in query head",
            DiagCode::Fl003ConflictingCardinality => "conflicting cardinality declarations",
            DiagCode::Fl004DuplicateDeclaration => "duplicate declaration",
            DiagCode::Fl005UndeclaredReference => "reference to undeclared constant",
            DiagCode::Fl006ShadowedSignature => "shadowed signature redeclaration",
            DiagCode::Fl007DeadQueryAtom => "dead query atom",
            DiagCode::Fl010UnknownPredicate => "unknown predicate or wrong arity",
            DiagCode::Fl011UnsafeRule => "unsafe rule",
            DiagCode::Fl012NotWeaklyAcyclic => "rule set is not weakly acyclic",
            DiagCode::Fl013NotGuarded => "unguarded existential rule",
            DiagCode::Fl014NotSticky => "rule set is not sticky",
        }
    }

    /// The default severity of the code.
    ///
    /// `FL012`–`FL014` are warnings individually: each reports one failed
    /// chase-termination class, and a rule set is admitted as long as *at
    /// least one* class holds (the built-in `Σ_FL` itself is not weakly
    /// acyclic, but is guarded).
    pub const fn severity(self) -> Severity {
        match self {
            DiagCode::Fl002AnonymousInHead
            | DiagCode::Fl010UnknownPredicate
            | DiagCode::Fl011UnsafeRule => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal; the program still translates.
    Warning,
    /// The program is rejected (or meaningless) as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One analyzer finding: a coded message anchored at a source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (normally `code.severity()`).
    pub severity: Severity,
    /// Source position (1-based line:col) of the offending construct.
    pub pos: Pos,
    /// Human-readable message, specific to this occurrence.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity.
    pub fn new(code: DiagCode, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.pos.line, self.pos.col, self.severity, self.code, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in DiagCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {c}");
            assert!(c.code().starts_with("FL"));
            assert_eq!(c.code().len(), 5);
            assert!(!c.title().is_empty());
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn error_codes_are_exactly_the_rejecting_ones() {
        for c in DiagCode::ALL {
            let expect = matches!(
                c,
                DiagCode::Fl002AnonymousInHead
                    | DiagCode::Fl010UnknownPredicate
                    | DiagCode::Fl011UnsafeRule
            );
            assert_eq!(c.severity() == Severity::Error, expect, "{c}");
        }
    }

    #[test]
    fn display_renders_line_col_and_code() {
        let d = Diagnostic::new(
            DiagCode::Fl001SingletonVariable,
            Pos { line: 3, col: 9 },
            "variable `X` occurs only once",
        );
        assert_eq!(
            d.to_string(),
            "3:9: warning[FL001]: variable `X` occurs only once"
        );
    }
}
