//! Σ-admission: the constraint-set static analyzer.
//!
//! User-supplied rule sets (`.sigma` files of TGDs/EGDs over the fixed
//! `P_FL` schema) are *gated* before they ever reach the chase engine:
//!
//! 1. **Schema & safety validation** — unknown predicates and arity
//!    mismatches (`FL010`), unsafe rules (`FL011`: an EGD side that is
//!    not a body variable, more than one existentially quantified head
//!    variable, an oversized rule set). These are errors: the set is
//!    rejected outright.
//! 2. **Chase-termination classification** — the three classes of the
//!    Calì–Gottlob–Kifer taxonomy, each with a coded diagnostic when it
//!    fails: weak acyclicity (`FL012`: a value-invention cycle in the
//!    dependency graph), guardedness (`FL013`: an existential rule with
//!    no body atom covering its frontier), stickiness (`FL014`: a marked
//!    variable occurring twice in a body). These are warnings
//!    individually; the set is **admitted** when it is error-free and at
//!    least one class holds. The built-in `Σ_FL` itself is *not* weakly
//!    acyclic (the `data[2] → member[0] → mandatory[1]` pump) and *not*
//!    sticky, but is guarded — it is admitted via the guarded class.
//! 3. **Chase-depth bound derivation** ([`SigmaAdmission::level_bound`])
//!    — weakly acyclic sets get a terminating-chase bound from the
//!    existential ranks of the dependency graph; guarded/sticky sets get
//!    the Theorem 12 shape `2·|q1|·|q2|` (so `Σ_FL`-shaped sets derive
//!    exactly the built-in bound).
//!
//! The guardedness check is deliberately the *frontier-guardedness of
//! existential rules only*: a Datalog (full) TGD invents nothing, so it
//! cannot pump the chase regardless of its shape. Textbook guardedness
//! over all rules would reject `Σ_FL` (ρ2's body `sub(C1,C2), sub(C2,C3)`
//! has no single guard atom), contradicting the paper's own Theorem 12.

use std::collections::HashMap;
use std::sync::Arc;

use flogic_model::{Atom, DepGraph, Egd, Pred, PredPos, RuleId, RuleSet, SigmaRule, Tgd};
use flogic_syntax::{
    parse_sigma, AstTerm, Pos, SigmaAtomAst, SigmaRuleKindAst, SpannedTerm, SyntaxError,
};
use flogic_term::Term;

use crate::diagnostics::{DiagCode, Diagnostic, Severity};

/// A chase-termination class a rule set can fall into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SigmaClass {
    /// No cycle through an existential edge in the dependency graph: the
    /// chase terminates on every input.
    WeaklyAcyclic,
    /// Every existential rule has a body atom covering all of its
    /// frontier variables.
    Guarded,
    /// The marked-variable propagation terminates with no marked variable
    /// occurring twice in a rule body.
    Sticky,
}

impl SigmaClass {
    /// All classes, in a fixed order.
    pub const ALL: [SigmaClass; 3] = [
        SigmaClass::WeaklyAcyclic,
        SigmaClass::Guarded,
        SigmaClass::Sticky,
    ];

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            SigmaClass::WeaklyAcyclic => "weakly acyclic",
            SigmaClass::Guarded => "guarded",
            SigmaClass::Sticky => "sticky",
        }
    }
}

impl std::fmt::Display for SigmaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The analyzer's complete verdict on one rule set: the translated set,
/// the classes that hold, every diagnostic, and the admission decision.
#[derive(Clone, Debug)]
pub struct SigmaAdmission {
    rule_set: Arc<RuleSet>,
    classes: Vec<SigmaClass>,
    diagnostics: Vec<Diagnostic>,
    admitted: bool,
}

impl SigmaAdmission {
    /// The translated rule set (usable with `ChaseOptions::sigma` when
    /// [`is_admitted`](Self::is_admitted)).
    pub fn rule_set(&self) -> &Arc<RuleSet> {
        &self.rule_set
    }

    /// The chase-termination classes that hold, in [`SigmaClass::ALL`]
    /// order.
    pub fn classes(&self) -> &[SigmaClass] {
        &self.classes
    }

    /// Every diagnostic, sorted by `(position, code)`.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether the set may be handed to the engine: error-free and in at
    /// least one chase-termination class.
    pub fn is_admitted(&self) -> bool {
        self.admitted
    }

    /// The derived chase level bound for deciding `q1 ⊆_Σ q2` with body
    /// sizes `n1`, `n2`.
    ///
    /// * Weakly acyclic sets: the chase *terminates*; the bound is an
    ///   upper bound on its depth, derived from the existential ranks of
    ///   the dependency graph (saturating, clamped to `u32::MAX`). The
    ///   bounded chase is then the full chase — sound and complete.
    /// * Guarded or sticky (non-WA) sets: the Theorem 12 shape
    ///   `2·n1·n2`, matching `flogic-core::bound_from_sizes` exactly, so
    ///   a `Σ_FL`-shaped custom set derives the identical bound.
    pub fn level_bound(&self, n1: usize, n2: usize) -> u32 {
        if self.classes.contains(&SigmaClass::WeaklyAcyclic) {
            wa_level_bound(&self.rule_set, n1)
        } else {
            let product = 2u64.saturating_mul(n1 as u64).saturating_mul(n2 as u64);
            u32::try_from(product).unwrap_or(u32::MAX)
        }
    }

    /// One-line summary of the verdict, e.g.
    /// `"admitted (guarded); 12 rules"`.
    pub fn summary(&self) -> String {
        let classes = if self.classes.is_empty() {
            "no chase-termination class holds".to_string()
        } else {
            self.classes
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{} ({classes}); {} rule(s)",
            if self.admitted {
                "admitted"
            } else {
                "rejected"
            },
            self.rule_set.len(),
        )
    }
}

/// Source positions for diagnostics, indexed by `RuleId::index()`.
struct Spans {
    /// Position of each rule's first token.
    rules: Vec<Pos>,
    /// Per rule: first *body* occurrence of each (translated) variable.
    vars: Vec<HashMap<Term, Pos>>,
}

impl Spans {
    /// Synthetic spans for sets without source text (built-in or
    /// generated): rule `i` is said to be at line `i+1`, column 1.
    fn synthetic(n: usize) -> Spans {
        Spans {
            rules: (0..n)
                .map(|i| Pos {
                    line: u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1),
                    col: 1,
                })
                .collect(),
            vars: vec![HashMap::new(); n],
        }
    }

    fn rule_pos(&self, id: RuleId) -> Pos {
        self.rules
            .get(id.index())
            .copied()
            .unwrap_or(Pos { line: 1, col: 1 })
    }

    fn var_pos(&self, id: RuleId, var: Term) -> Pos {
        self.vars
            .get(id.index())
            .and_then(|m| m.get(&var).copied())
            .unwrap_or_else(|| self.rule_pos(id))
    }
}

/// Renders a translated rule variable for messages, without the reserved
/// `#` prefix.
fn var_name(t: Term) -> String {
    t.to_string().trim_start_matches('#').to_string()
}

/// Parses and analyzes a `.sigma` source: schema/safety validation,
/// chase-termination classification, admission decision. `name` labels
/// the resulting [`RuleSet`] (conventionally the file path).
///
/// `Err` only for *parse* errors (malformed tokens or rule shapes);
/// schema-level problems come back as `FL010`/`FL011` diagnostics in the
/// (rejected) [`SigmaAdmission`] so one run reports all of them.
pub fn admit_sigma(src: &str, name: &str) -> Result<SigmaAdmission, SyntaxError> {
    let ast = parse_sigma(src)?;
    let mut diagnostics = Vec::new();
    let mut rules = Vec::new();
    let mut spans = Spans {
        rules: Vec::new(),
        vars: Vec::new(),
    };
    let truncated = ast.rules.len().min(usize::from(u16::MAX));
    if ast.rules.len() > truncated {
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl011UnsafeRule,
            ast.rules[truncated].pos,
            format!(
                "rule set has {} rules; at most {} are supported",
                ast.rules.len(),
                u16::MAX
            ),
        ));
    }
    for (i, rule) in ast.rules[..truncated].iter().enumerate() {
        let id = RuleId::Custom(i as u16);
        spans.rules.push(rule.pos);
        let mut var_spans: HashMap<Term, Pos> = HashMap::new();
        let mut anon = 0u32;
        let translated = match &rule.kind {
            SigmaRuleKindAst::Tgd { head, body } => translate_tgd(
                id,
                rule.pos,
                head,
                body,
                &mut anon,
                &mut var_spans,
                &mut diagnostics,
            )
            .map(SigmaRule::Tgd),
            SigmaRuleKindAst::Egd { left, right, body } => translate_egd(
                id,
                left,
                right,
                body,
                &mut anon,
                &mut var_spans,
                &mut diagnostics,
            )
            .map(SigmaRule::Egd),
        };
        spans.vars.push(var_spans);
        if let Some(r) = translated {
            rules.push(r);
        }
    }
    let rule_set = Arc::new(RuleSet::new(name, rules));
    Ok(finish(rule_set, &spans, diagnostics))
}

/// Classifies an already-built rule set (the built-in `Σ_FL`, or a
/// generated set) without source text; diagnostics carry synthetic spans
/// (rule `i` ↦ line `i+1`, column 1).
pub fn classify_rule_set(rule_set: Arc<RuleSet>) -> SigmaAdmission {
    let spans = Spans::synthetic(
        rule_set
            .rules()
            .iter()
            .map(|r| r.id().index() + 1)
            .max()
            .unwrap_or(0),
    );
    finish(rule_set, &spans, Vec::new())
}

/// Shared tail of both entry points: classify, sort diagnostics, decide.
fn finish(
    rule_set: Arc<RuleSet>,
    spans: &Spans,
    mut diagnostics: Vec<Diagnostic>,
) -> SigmaAdmission {
    let classes = classify(rule_set.rules(), spans, &mut diagnostics);
    diagnostics.sort_by_key(|a| (a.pos, a.code));
    let errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let admitted = !errors && !classes.is_empty();
    SigmaAdmission {
        rule_set,
        classes,
        diagnostics,
        admitted,
    }
}

// ---- translation (.sigma AST → model rules) ------------------------------

/// Converts one surface term; anonymous `_` gets a fresh reserved
/// variable per occurrence (so each `_` is independent, as in queries).
fn translate_term(t: &AstTerm, anon: &mut u32) -> Term {
    match t {
        AstTerm::Const(s) => Term::constant(s),
        AstTerm::Var(s) => Term::var(&format!("#{s}")),
        AstTerm::Anon => {
            *anon += 1;
            Term::var(&format!("#_g{anon}"))
        }
    }
}

/// Validates and converts one atom: predicate must be in the `P_FL`
/// schema with the right arity (`FL010` otherwise). Records first body
/// occurrences of variables into `var_spans` when `record_vars`.
fn translate_atom(
    atom: &SigmaAtomAst,
    anon: &mut u32,
    var_spans: &mut HashMap<Term, Pos>,
    record_vars: bool,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<Atom> {
    let Some(pred) = Pred::from_name(&atom.name) else {
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl010UnknownPredicate,
            atom.pos,
            format!(
                "unknown predicate `{}`; the P_FL schema is member/2, sub/2, \
                 data/3, type/3, mandatory/2, funct/2",
                atom.name
            ),
        ));
        return None;
    };
    if atom.args.len() != pred.arity() {
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl010UnknownPredicate,
            atom.pos,
            format!(
                "predicate `{}` takes {} arguments, got {}",
                atom.name,
                pred.arity(),
                atom.args.len()
            ),
        ));
        return None;
    }
    let args: Vec<Term> = atom
        .args
        .iter()
        .map(|SpannedTerm { term, pos }| {
            let t = translate_term(term, anon);
            if record_vars && t.is_var() {
                var_spans.entry(t).or_insert(*pos);
            }
            t
        })
        .collect();
    Atom::new(pred, &args).ok()
}

fn translate_body(
    body: &[SigmaAtomAst],
    anon: &mut u32,
    var_spans: &mut HashMap<Term, Pos>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<Vec<Atom>> {
    let atoms: Vec<Option<Atom>> = body
        .iter()
        .map(|a| translate_atom(a, anon, var_spans, true, diagnostics))
        .collect();
    // Collect() after the map so every bad atom is diagnosed, not just
    // the first.
    atoms.into_iter().collect()
}

fn translate_tgd(
    id: RuleId,
    rule_pos: Pos,
    head: &SigmaAtomAst,
    body: &[SigmaAtomAst],
    anon: &mut u32,
    var_spans: &mut HashMap<Term, Pos>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<Tgd> {
    let body_atoms = translate_body(body, anon, var_spans, diagnostics);
    let head_atom = translate_atom(head, anon, var_spans, false, diagnostics);
    let (body, head) = (body_atoms?, head_atom?);
    let body_vars: Vec<Term> = body.iter().flat_map(Atom::vars).collect();
    // Head variables absent from the body are implicitly existentially
    // quantified; the engine supports at most one per rule.
    let mut existentials: Vec<Term> = Vec::new();
    for v in head.vars() {
        if !body_vars.contains(&v) && !existentials.contains(&v) {
            existentials.push(v);
        }
    }
    if existentials.len() > 1 {
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl011UnsafeRule,
            rule_pos,
            format!(
                "rule has {} existentially quantified head variables ({}); \
                 at most one is supported",
                existentials.len(),
                existentials
                    .iter()
                    .map(|v| format!("`{}`", var_name(*v)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
        return None;
    }
    Some(Tgd {
        id,
        body,
        head,
        existential: existentials.pop(),
    })
}

fn translate_egd(
    id: RuleId,
    left: &SpannedTerm,
    right: &SpannedTerm,
    body: &[SigmaAtomAst],
    anon: &mut u32,
    var_spans: &mut HashMap<Term, Pos>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<Egd> {
    let body_atoms = translate_body(body, anon, var_spans, diagnostics)?;
    let body_vars: Vec<Term> = body_atoms.iter().flat_map(Atom::vars).collect();
    let mut side = |s: &SpannedTerm| -> Option<Term> {
        let ok = matches!(s.term, AstTerm::Var(_));
        let t = translate_term(&s.term, anon);
        if !ok || !body_vars.contains(&t) {
            diagnostics.push(Diagnostic::new(
                DiagCode::Fl011UnsafeRule,
                s.pos,
                format!(
                    "EGD side `{}` must be a variable occurring in the body",
                    match &s.term {
                        AstTerm::Const(c) | AstTerm::Var(c) => c.as_str(),
                        AstTerm::Anon => "_",
                    }
                ),
            ));
            return None;
        }
        Some(t)
    };
    let (l, r) = (side(left), side(right));
    Some(Egd {
        id,
        body: body_atoms,
        left: l?,
        right: r?,
    })
}

// ---- classification ------------------------------------------------------

/// Runs the three classifiers, emitting `FL012`–`FL014` for the failing
/// ones. Returns the classes that hold, in [`SigmaClass::ALL`] order.
fn classify(
    rules: &[SigmaRule],
    spans: &Spans,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<SigmaClass> {
    let graph = DepGraph::for_rules(rules);
    let mut classes = Vec::new();
    if check_weak_acyclicity(&graph, spans, diagnostics) {
        classes.push(SigmaClass::WeaklyAcyclic);
    }
    if check_guardedness(rules, spans, diagnostics) {
        classes.push(SigmaClass::Guarded);
    }
    if check_stickiness(rules, spans, diagnostics) {
        classes.push(SigmaClass::Sticky);
    }
    classes
}

/// Weak acyclicity: the dependency graph has no cycle through an
/// existential edge ([`DepGraph::invention_cycles`] is empty). One
/// `FL012` per cycle, anchored at the existential rule that closes it.
fn check_weak_acyclicity(
    graph: &DepGraph,
    spans: &Spans,
    diagnostics: &mut Vec<Diagnostic>,
) -> bool {
    let cycles = graph.invention_cycles();
    for cycle in &cycles {
        let (first, last) = (cycle[0], cycle[cycle.len() - 1]);
        // The existential edge last → first closes the cycle; its rule is
        // the value inventor the diagnostic points at.
        let closing_rule = graph
            .edges()
            .iter()
            .find(|e| e.existential && e.from == last && e.to == first)
            .map(|e| e.rule);
        let path = cycle
            .iter()
            .map(PredPos::to_string)
            .collect::<Vec<_>>()
            .join(" → ");
        let (pos, via) = match closing_rule {
            Some(id) => (spans.rule_pos(id), format!(" (closed by rule {id})")),
            None => (Pos { line: 1, col: 1 }, String::new()),
        };
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl012NotWeaklyAcyclic,
            pos,
            format!(
                "value-invention cycle {path}{via}: the chase may invent \
                 unboundedly many nulls"
            ),
        ));
    }
    cycles.is_empty()
}

/// Guardedness (for admission): every *existential* rule must have a body
/// atom containing all of its frontier variables (head variables that
/// also occur in the body). Datalog rules invent nothing and are exempt —
/// see the module docs for why this deliberately differs from textbook
/// guardedness.
fn check_guardedness(
    rules: &[SigmaRule],
    spans: &Spans,
    diagnostics: &mut Vec<Diagnostic>,
) -> bool {
    let mut guarded = true;
    for rule in rules {
        let SigmaRule::Tgd(tgd) = rule else { continue };
        if tgd.existential.is_none() {
            continue;
        }
        let body_vars: Vec<Term> = tgd.body.iter().flat_map(Atom::vars).collect();
        let frontier: Vec<Term> = tgd.head.vars().filter(|v| body_vars.contains(v)).collect();
        let covers = |a: &Atom, v: Term| a.vars().any(|x| x == v);
        if tgd
            .body
            .iter()
            .any(|a| frontier.iter().all(|v| covers(a, *v)))
        {
            continue;
        }
        guarded = false;
        // Anchor at a frontier variable the best-covering atom misses.
        let best = tgd
            .body
            .iter()
            .max_by_key(|a| frontier.iter().filter(|v| covers(a, **v)).count())
            .expect("TGD bodies are non-empty");
        let missing = frontier
            .iter()
            .copied()
            .find(|v| !covers(best, *v))
            .unwrap_or(frontier[0]);
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl013NotGuarded,
            spans.var_pos(tgd.id, missing),
            format!(
                "existential rule {} has no body atom covering its frontier \
                 variables {}; `{}` is left unguarded",
                tgd.id,
                frontier
                    .iter()
                    .map(|v| format!("`{}`", var_name(*v)))
                    .collect::<Vec<_>>()
                    .join(", "),
                var_name(missing)
            ),
        ));
    }
    guarded
}

/// Stickiness: the marked-variable propagation of the sticky-Datalog±
/// test. Initially every body variable absent from its rule's head is
/// marked; then, to a fixpoint, a head variable sitting at a predicate
/// position where *any* rule has a marked body occurrence becomes marked
/// in its own rule's body. Sticky iff no marked variable occurs twice in
/// a body. One `FL014` per violating rule.
fn check_stickiness(rules: &[SigmaRule], spans: &Spans, diagnostics: &mut Vec<Diagnostic>) -> bool {
    let tgds: Vec<&Tgd> = rules
        .iter()
        .filter_map(|r| match r {
            SigmaRule::Tgd(t) => Some(t),
            SigmaRule::Egd(_) => None,
        })
        .collect();
    // marked[r]: the marked variables of rule r. marked_pos: predicate
    // positions holding a marked body occurrence in any rule.
    let mut marked: Vec<Vec<Term>> = Vec::with_capacity(tgds.len());
    for tgd in &tgds {
        let head_vars: Vec<Term> = tgd.head.vars().collect();
        let mut m: Vec<Term> = Vec::new();
        for a in &tgd.body {
            for v in a.vars() {
                if !head_vars.contains(&v) && !m.contains(&v) {
                    m.push(v);
                }
            }
        }
        marked.push(m);
    }
    let mut marked_pos: Vec<bool> = vec![false; PredPos::COUNT];
    loop {
        let mut changed = false;
        for (r, tgd) in tgds.iter().enumerate() {
            for v in &marked[r] {
                for a in &tgd.body {
                    for (i, t) in a.args().iter().enumerate() {
                        if t == v {
                            let idx = PredPos {
                                pred: a.pred(),
                                pos: i,
                            }
                            .index();
                            if !marked_pos[idx] {
                                marked_pos[idx] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        for (r, tgd) in tgds.iter().enumerate() {
            for (j, t) in tgd.head.args().iter().enumerate() {
                if !t.is_var() || marked[r].contains(t) {
                    continue;
                }
                let idx = PredPos {
                    pred: tgd.head.pred(),
                    pos: j,
                }
                .index();
                if marked_pos[idx] {
                    marked[r].push(*t);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut sticky = true;
    for (r, tgd) in tgds.iter().enumerate() {
        let violator = marked[r].iter().copied().find(|v| {
            tgds[r]
                .body
                .iter()
                .flat_map(|a| a.args().iter().filter(|t| *t == v))
                .count()
                >= 2
        });
        let Some(v) = violator else { continue };
        sticky = false;
        diagnostics.push(Diagnostic::new(
            DiagCode::Fl014NotSticky,
            spans.var_pos(tgd.id, v),
            format!(
                "marked variable `{}` occurs more than once in the body of \
                 rule {}: derivations do not stick",
                var_name(v),
                tgd.id
            ),
        ));
    }
    sticky
}

// ---- derived bounds ------------------------------------------------------

/// Chase-depth bound for a weakly acyclic rule set on a query with `n1`
/// body atoms: the standard rank argument (Fagin et al.). Every value in
/// the chase sits at positions of bounded *existential rank* (max number
/// of existential edges on a dependency path); per rank step the number
/// of distinct values grows at most polynomially, the total number of
/// distinct conjuncts is bounded by the value count raised to the
/// predicate arities, and the level of a conjunct never exceeds the
/// number of conjuncts (each level needs a strictly deeper parent).
/// All arithmetic saturates; the result clamps to `u32::MAX` (a clamp is
/// sound: a too-*large* bound only lets the chase run to its natural
/// fixpoint, which weak acyclicity guarantees it reaches).
fn wa_level_bound(rule_set: &RuleSet, n1: usize) -> u32 {
    let graph = DepGraph::for_rules(rule_set.rules());
    // Existential ranks by relaxation; weak acyclicity (checked before
    // this is called) guarantees convergence, the iteration cap is a
    // defensive backstop for direct callers.
    let mut rank = [0u64; PredPos::COUNT];
    for _ in 0..=graph.edges().len() * PredPos::COUNT {
        let mut changed = false;
        for e in graph.edges() {
            let bump = u64::from(e.existential);
            let candidate = rank[e.from.index()].saturating_add(bump);
            if candidate > rank[e.to.index()] {
                rank[e.to.index()] = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let max_rank = rank.iter().copied().max().unwrap_or(0).min(64);
    // Values at rank 0: the query's own terms (≤ 3 per atom, arities ≤ 3).
    let mut values: u64 = (n1 as u64).saturating_mul(3).max(1);
    let inventors = rule_set
        .tgds()
        .iter()
        .filter(|t| t.existential.is_some())
        .count() as u64;
    for _ in 0..max_rank {
        // Each existential rule invents at most one null per distinct
        // image of its (≤ 3) frontier variables.
        let invented = inventors.saturating_mul(values.saturating_pow(3));
        values = values.saturating_add(invented);
    }
    // Distinct conjuncts: 4 binary and 2 ternary predicates.
    let conjuncts = values
        .saturating_pow(2)
        .saturating_mul(4)
        .saturating_add(values.saturating_pow(3).saturating_mul(2));
    u32::try_from(conjuncts).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(a: &SigmaAdmission) -> Vec<DiagCode> {
        a.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn sigma_fl_is_guarded_not_wa_not_sticky_and_admitted() {
        let a = classify_rule_set(RuleSet::sigma_fl().clone());
        assert!(a.is_admitted());
        assert_eq!(a.classes(), &[SigmaClass::Guarded]);
        // The value-invention pump of Σ_FL, exactly as the dependency
        // graph reports it, closed by ρ5.
        let fl012: Vec<_> = a
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::Fl012NotWeaklyAcyclic)
            .collect();
        assert_eq!(fl012.len(), 1);
        assert!(
            fl012[0]
                .message
                .contains("data[2] → member[0] → mandatory[1]"),
            "unexpected cycle message: {}",
            fl012[0].message
        );
        assert!(fl012[0].message.contains("rho5"));
        // Synthetic span: ρ5 is the 5th rule.
        assert_eq!(fl012[0].pos, Pos { line: 5, col: 1 });
        // Not sticky either (ρ1 marks `O`, which repeats in its body).
        assert!(codes(&a).contains(&DiagCode::Fl014NotSticky));
        // Warnings only: the set is admitted via the guarded class.
        assert!(a
            .diagnostics()
            .iter()
            .all(|d| d.severity == Severity::Warning));
        assert!(a.summary().starts_with("admitted (guarded)"));
    }

    #[test]
    fn transitive_set_is_weakly_acyclic_but_not_sticky() {
        let a = admit_sigma("sub(X, Z) :- sub(X, Y), sub(Y, Z).", "transitive").unwrap();
        assert!(a.is_admitted());
        assert_eq!(
            a.classes(),
            &[SigmaClass::WeaklyAcyclic, SigmaClass::Guarded],
            "no existential rules: trivially guarded"
        );
        // `Y` is marked (absent from the head) and occurs twice.
        let d = &a.diagnostics()[0];
        assert_eq!(d.code, DiagCode::Fl014NotSticky);
        assert!(d.message.contains("`Y`"));
        // First body occurrence of Y: `sub(X, Y)`'s second argument.
        assert_eq!(d.pos, Pos { line: 1, col: 21 });
    }

    #[test]
    fn unknown_predicates_and_arities_are_fl010_errors_with_spans() {
        let src = "frobnicate(A, B) :- member(A, B).\n\
                   member(V, C) :- data(O, V).\n";
        let a = admit_sigma(src, "bad").unwrap();
        assert!(!a.is_admitted());
        let diags = a.diagnostics();
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::Fl010UnknownPredicate
                && d.severity == Severity::Error
                && d.pos == Pos { line: 1, col: 1 }
                && d.message.contains("frobnicate")));
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::Fl010UnknownPredicate
                && d.pos == Pos { line: 2, col: 17 }
                && d.message.contains("takes 3 arguments, got 2")));
    }

    #[test]
    fn unsafe_rules_are_fl011_errors() {
        // EGD side is a constant.
        let a = admit_sigma("c = W :- data(O, A, W), funct(A, O).", "egd").unwrap();
        assert!(!a.is_admitted());
        assert!(a
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::Fl011UnsafeRule
                && d.pos == Pos { line: 1, col: 1 }
                && d.message.contains("`c`")));
        // EGD side is a variable that never occurs in the body.
        let a = admit_sigma("V = W :- data(O, A, W), funct(A, O).", "egd2").unwrap();
        assert!(!a.is_admitted());
        assert!(codes(&a).contains(&DiagCode::Fl011UnsafeRule));
        // Two existential head variables.
        let a = admit_sigma("data(O, A, V) :- member(O, C).", "two-ex").unwrap();
        assert!(!a.is_admitted());
        assert!(a
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::Fl011UnsafeRule
                && d.message.contains("2 existentially quantified")));
    }

    #[test]
    fn set_failing_all_three_classes_is_rejected_with_warnings_only() {
        let src = "data(O, A, V) :- member(O, C), type(C, A, T).\n\
                   member(V, C) :- data(O, A, V), type(O, A, C).\n\
                   type(V, A, T) :- member(V, T), mandatory(A, T).\n";
        let a = admit_sigma(src, "rejected").unwrap();
        assert!(!a.is_admitted());
        assert!(a.classes().is_empty());
        let cs = codes(&a);
        assert!(cs.contains(&DiagCode::Fl012NotWeaklyAcyclic));
        assert!(cs.contains(&DiagCode::Fl013NotGuarded));
        assert!(cs.contains(&DiagCode::Fl014NotSticky));
        // Every diagnostic carries a real span.
        assert!(a
            .diagnostics()
            .iter()
            .all(|d| d.pos.line >= 1 && d.pos.col >= 1));
        assert!(a.summary().starts_with("rejected"));
    }

    #[test]
    fn unguarded_existential_rule_span_points_at_missing_frontier_var() {
        let src = "data(O, A, V) :- member(O, C), type(C, A, T).";
        let a = admit_sigma(src, "unguarded").unwrap();
        let d = a
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::Fl013NotGuarded)
            .expect("FL013 expected");
        // Frontier is {O, A}; whichever atom is picked as best guard, the
        // missing variable's span is its first body occurrence.
        let o_pos = Pos { line: 1, col: 25 };
        let a_pos = Pos { line: 1, col: 40 };
        assert!(d.pos == o_pos || d.pos == a_pos, "got {:?}", d.pos);
    }

    #[test]
    fn non_wa_sets_derive_the_theorem_12_bound() {
        let a = classify_rule_set(RuleSet::sigma_fl().clone());
        assert_eq!(a.level_bound(3, 4), 24);
        assert_eq!(a.level_bound(1, 1), 2);
        // Saturation, not overflow.
        assert_eq!(a.level_bound(usize::MAX, 2), u32::MAX);
    }

    #[test]
    fn wa_sets_derive_a_rank_based_bound_independent_of_q2() {
        let a = admit_sigma("sub(X, Z) :- sub(X, Y), sub(Y, Z).", "transitive").unwrap();
        let b = a.level_bound(2, 5);
        assert_eq!(b, a.level_bound(2, 500));
        // No existential rules: values stay at 3·n1 = 6, conjuncts at
        // 4·6² + 2·6³.
        assert_eq!(b, 4 * 36 + 2 * 216);
    }

    #[test]
    fn guarded_existential_non_wa_set_admits_via_guardedness() {
        let src = "data(O, A, V) :- mandatory(A, O).\n\
                   mandatory(A, V) :- data(O, A, V).\n";
        let a = admit_sigma(src, "pump").unwrap();
        assert!(a.is_admitted());
        assert!(a.classes().contains(&SigmaClass::Guarded));
        assert!(!a.classes().contains(&SigmaClass::WeaklyAcyclic));
        assert!(codes(&a).contains(&DiagCode::Fl012NotWeaklyAcyclic));
    }

    #[test]
    fn anonymous_body_variables_are_fresh_and_legal() {
        let a = admit_sigma("member(O, C) :- member(O, _), sub(_, C).", "anon").unwrap();
        // Each `_` is a distinct variable; the rule is a plain Datalog TGD.
        assert!(a.is_admitted());
        assert_eq!(a.rule_set().len(), 1);
    }

    #[test]
    fn empty_rule_set_is_admitted_and_trivially_in_every_class() {
        let a = admit_sigma("% nothing here\n", "empty").unwrap();
        assert!(a.is_admitted());
        assert_eq!(a.classes(), &SigmaClass::ALL);
        assert!(a.diagnostics().is_empty());
    }

    #[test]
    fn parse_errors_are_err_not_diagnostics() {
        assert!(admit_sigma("member(A, B) :- ", "broken").is_err());
    }
}
