//! Classic (constraint-free) conjunctive-query containment — the
//! Chandra–Merlin baseline.

use flogic_hom::{find_hom, Target};
use flogic_model::ConjunctiveQuery;

use crate::CoreError;

/// Decides classic containment `q1 ⊆ q2` over *unconstrained* databases:
/// a homomorphism from `body(q2)` to `body(q1)` mapping `head(q2)` to
/// `head(q1)` (Chandra & Merlin 1977; recalled in Section 3 of the paper).
///
/// Classic containment implies containment under `Σ_FL` (every
/// `Σ_FL`-satisfying database is a database), but not conversely — the
/// difference is exactly what the paper's examples and our E6 experiment
/// measure.
pub fn classic_contains(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool, CoreError> {
    if q1.arity() != q2.arity() {
        return Err(CoreError::ArityMismatch {
            q1: q1.arity(),
            q2: q2.arity(),
        });
    }
    let target = Target::from_query(q1);
    Ok(find_hom(q2.body(), q2.head(), &target, q1.head()).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contains;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn syntactic_subset_is_contained() {
        let q1 = q("q(X) :- member(X, c), data(X, a, V).");
        let q2 = q("qq(X) :- member(X, c).");
        assert!(classic_contains(&q1, &q2).unwrap());
        assert!(!classic_contains(&q2, &q1).unwrap());
    }

    #[test]
    fn renamed_variant_is_contained_both_ways() {
        let q1 = q("q(X) :- member(X, C), sub(C, D).");
        let q2 = q("qq(Y) :- member(Y, E), sub(E, F).");
        assert!(classic_contains(&q1, &q2).unwrap());
        assert!(classic_contains(&q2, &q1).unwrap());
    }

    #[test]
    fn sigma_containment_strictly_stronger() {
        // Transitivity containment holds under Σ_FL but NOT classically.
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("qq(X, Z) :- sub(X, Z).");
        assert!(!classic_contains(&q1, &q2).unwrap());
        assert!(contains(&q1, &q2).unwrap().holds());
    }

    #[test]
    fn classic_implies_sigma() {
        let q1 = q("q(X) :- member(X, c), data(X, a, V), sub(c, d).");
        let q2 = q("qq(X) :- member(X, C), sub(C, D).");
        if classic_contains(&q1, &q2).unwrap() {
            assert!(contains(&q1, &q2).unwrap().holds());
        }
    }

    #[test]
    fn arity_checked() {
        let q1 = q("q(X) :- member(X, Y).");
        let q2 = q("qq() :- member(X, Y).");
        assert!(classic_contains(&q1, &q2).is_err());
    }
}
