//! A naive iterative-deepening baseline that does not know the Theorem 12
//! bound.
//!
//! Before the paper's result, the obvious semi-decision procedure for
//! `q1 ⊆_ΣFL q2` was: chase `q1` deeper and deeper, checking for the
//! Theorem 4 homomorphism after every extension. It terminates with
//! *holds* as soon as a homomorphism appears, and with *does not hold*
//! only if the chase happens to be finite; on an infinite chase with no
//! homomorphism it runs forever (here: until `max_level`). The benchmark
//! suite compares this baseline against the bounded procedure.

use flogic_chase::{chase_bounded, ChaseOptions, ChaseOutcome};
use flogic_hom::{find_hom, Target};
use flogic_model::ConjunctiveQuery;

use crate::CoreError;

/// Outcome of the naive procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NaiveOutcome {
    /// A homomorphism was found once the chase reached this level.
    Holds {
        /// The chase level at which the witness first appeared.
        level: u32,
    },
    /// The chase completed (it was finite) at this level and no
    /// homomorphism exists: containment refuted.
    NotContained {
        /// The level at which the chase reached its fixpoint.
        level: u32,
    },
    /// `max_level` was reached without either outcome; the naive procedure
    /// cannot decide (this is precisely what Theorem 12 fixes).
    Unknown,
}

/// Runs the iterative-deepening baseline up to `max_level`.
pub fn contains_naive(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    max_level: u32,
    max_conjuncts: usize,
) -> Result<NaiveOutcome, CoreError> {
    if q1.arity() != q2.arity() {
        return Err(CoreError::ArityMismatch {
            q1: q1.arity(),
            q2: q2.arity(),
        });
    }
    for level in 0..=max_level {
        let chase = chase_bounded(
            q1,
            &ChaseOptions {
                level_bound: level,
                max_conjuncts,
                ..Default::default()
            },
        )?;
        match chase.outcome() {
            ChaseOutcome::Failed { .. } => return Ok(NaiveOutcome::Holds { level }),
            ChaseOutcome::Exhausted { reason } => {
                return Err(CoreError::Exhausted {
                    reason,
                    conjuncts: chase.len(),
                    levels: chase.max_level(),
                })
            }
            ChaseOutcome::Completed | ChaseOutcome::LevelBounded => {}
        }
        let target = Target::from_chase(&chase);
        if find_hom(q2.body(), q2.head(), &target, chase.head()).is_some() {
            return Ok(NaiveOutcome::Holds { level });
        }
        if chase.outcome() == ChaseOutcome::Completed {
            // Finite chase fully materialized and no hom: definitive no.
            return Ok(NaiveOutcome::NotContained { level });
        }
    }
    Ok(NaiveOutcome::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contains;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn finds_shallow_witness_early() {
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("qq(X, Z) :- sub(X, Z).");
        assert_eq!(
            contains_naive(&q1, &q2, 10, 100_000).unwrap(),
            NaiveOutcome::Holds { level: 0 },
            "rho2 fires in chase-minus, i.e. level 0"
        );
    }

    #[test]
    fn refutes_on_finite_chase() {
        let q1 = q("q(X) :- member(X, c).");
        let q2 = q("qq(X) :- sub(X, c).");
        assert!(matches!(
            contains_naive(&q1, &q2, 10, 100_000).unwrap(),
            NaiveOutcome::NotContained { .. }
        ));
    }

    #[test]
    fn witness_at_positive_level() {
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let r = contains_naive(&q1, &q2, 10, 100_000).unwrap();
        assert!(matches!(r, NaiveOutcome::Holds { level } if (1..=2).contains(&level)));
    }

    #[test]
    fn unknown_on_infinite_chase_without_witness() {
        // Infinite chase, and q2 needs a data edge between two *distinct
        // constants* — never produced by rho5 (values are fresh nulls).
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(c1, c2, c3).");
        assert_eq!(
            contains_naive(&q1, &q2, 6, 100_000).unwrap(),
            NaiveOutcome::Unknown
        );
        // The bounded procedure *decides* (not contained) instead.
        assert!(!contains(&q1, &q2).unwrap().holds());
    }

    #[test]
    fn agrees_with_bounded_procedure() {
        let pairs = [
            ("q(X) :- member(X, c), sub(c, d).", "qq(X) :- member(X, d)."),
            ("q(X) :- member(X, c).", "qq(X) :- member(X, d)."),
            (
                "q(A) :- type(T, A, U), sub(U, W).",
                "qq(A) :- type(T, A, W).",
            ),
        ];
        for (s1, s2) in pairs {
            let q1 = q(s1);
            let q2 = q(s2);
            let bounded = contains(&q1, &q2).unwrap().holds();
            let naive = contains_naive(&q1, &q2, 20, 100_000).unwrap();
            match naive {
                NaiveOutcome::Holds { .. } => assert!(bounded, "{s1} vs {s2}"),
                NaiveOutcome::NotContained { .. } => assert!(!bounded, "{s1} vs {s2}"),
                NaiveOutcome::Unknown => {}
            }
        }
    }
}
