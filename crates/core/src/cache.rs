//! Containment-decision caching keyed by canonical query pairs.
//!
//! Deciding `q1 ⊆_ΣFL q2` is expensive (a bounded chase plus a
//! backtracking homomorphism search), while real workloads — query
//! minimisation, union checks, benchmark sweeps — keep asking about the
//! *same pairs up to variable renaming*. [`DecisionCache`] memoizes
//! verdicts under a canonical form that is invariant under renaming
//! variables and permuting body conjuncts, so a query rewritten apart
//! (fresh variable names, shuffled body) still hits.
//!
//! The canonical form is **sound, not complete**: equal keys imply
//! isomorphic queries (the key *is* the renamed query), but two isomorphic
//! queries whose bodies sort differently under the variable-blind shape
//! order may get distinct keys. A missed hit costs one recomputation,
//! never a wrong answer.
//!
//! Cache hits and misses are reported to the process-global
//! [`flogic_term::Metrics`], which the benchmark harness prints.

use std::collections::HashMap;
use std::sync::Mutex;

use flogic_chase::ChaseOutcome;
use flogic_model::{ConjunctiveQuery, Pred};
use flogic_term::{Metrics, Symbol, Term};

use crate::decide::{
    contains_batch, contains_with, ContainmentOptions, ContainmentResult, Verdict,
};
use crate::CoreError;

/// A term in canonical form: variables are replaced by their
/// first-occurrence index (head first, then the sorted body), everything
/// else is kept verbatim.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CanonTerm {
    /// A rigid constant, by name.
    Const(Symbol),
    /// A labelled null (cannot appear in well-formed queries, but the
    /// canonicalization is total anyway), by id.
    Null(u64),
    /// A variable, by first-occurrence index.
    Var(u32),
}

/// A query in canonical form. Two queries with equal `CanonQuery`s are
/// identical up to variable renaming and body-conjunct order, hence
/// `Σ_FL`-equivalent — they answer every containment question alike.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CanonQuery {
    head: Vec<CanonTerm>,
    body: Vec<(Pred, Vec<CanonTerm>)>,
}

/// Ordering key for an atom *under a partial variable numbering*:
/// constants sort by name, numbered variables by their number, and
/// not-yet-numbered variables by their first-occurrence pattern within
/// the atom (so `sub(U, U)` and `sub(U, V)` stay distinguishable).
/// Derived `Ord` puts `Const < Null < Var < Fresh`.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum KeyTerm {
    Const(&'static str),
    Null(u64),
    Var(u32),
    Fresh(u32),
}

fn atom_key(atom: &flogic_model::Atom, numbering: &HashMap<Symbol, u32>) -> (usize, Vec<KeyTerm>) {
    let mut local: HashMap<Symbol, u32> = HashMap::new();
    let args = atom
        .args()
        .iter()
        .map(|t| match t {
            Term::Const(s) => KeyTerm::Const(s.as_str()),
            Term::Null(n) => KeyTerm::Null(n.0),
            Term::Var(v) => match numbering.get(v) {
                Some(&n) => KeyTerm::Var(n),
                None => {
                    let next = local.len() as u32;
                    KeyTerm::Fresh(*local.entry(*v).or_insert(next))
                }
            },
        })
        .collect();
    (atom.pred().index(), args)
}

/// Computes the canonical form: number the head variables in head order
/// (the head is the one part of a query whose order is semantically
/// fixed), then greedily emit body atoms smallest-key-first, extending the
/// numbering with each emitted atom's fresh variables. Anchoring on the
/// head makes the result independent of the input body order whenever the
/// greedy choice is unambiguous; symmetric ties fall back to input order,
/// which can only cause cache misses, never wrong hits.
fn canonicalize(q: &ConjunctiveQuery) -> CanonQuery {
    let mut numbering: HashMap<Symbol, u32> = HashMap::new();
    let assign = |t: &Term, numbering: &mut HashMap<Symbol, u32>| match t {
        Term::Const(s) => CanonTerm::Const(*s),
        Term::Null(n) => CanonTerm::Null(n.0),
        Term::Var(v) => {
            let next = numbering.len() as u32;
            CanonTerm::Var(*numbering.entry(*v).or_insert(next))
        }
    };
    let head = q.head().iter().map(|t| assign(t, &mut numbering)).collect();

    let mut remaining: Vec<&flogic_model::Atom> = q.body().iter().collect();
    let mut body = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| atom_key(a, &numbering).cmp(&atom_key(b, &numbering)))
            .map(|(i, _)| i)
            .expect("remaining is non-empty");
        let atom = remaining.remove(best);
        body.push((
            atom.pred(),
            atom.args()
                .iter()
                .map(|t| assign(t, &mut numbering))
                .collect(),
        ));
    }
    CanonQuery { head, body }
}

/// An opaque, hashable canonical key for a single query: equal keys mean
/// the queries are identical up to variable renaming and body-conjunct
/// order, hence `Σ_FL`-equivalent.
///
/// This is the per-query half of the [`DecisionCache`] key, exported so
/// resident services can key *their own* caches (e.g. the `flqd` snapshot
/// cache keys chase snapshots by the `q1` they materialize) with the same
/// renaming-invariant discipline. Like the decision-cache key it is sound,
/// not complete: a missed match costs a recomputation, never a wrong hit.
///
/// ```
/// use flogic_core::QueryKey;
/// use flogic_syntax::parse_query;
/// let a = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let b = parse_query("p(A, C) :- sub(B, C), sub(A, B).").unwrap();
/// assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QueryKey(CanonQuery);

impl QueryKey {
    /// The canonical key of `q`.
    pub fn of(q: &ConjunctiveQuery) -> QueryKey {
        QueryKey(canonicalize(q))
    }
}

/// Cache key: the canonical pair plus the *effective* level bound and the
/// analysis toggle.
///
/// The effective bound is `min(requested, theorem)`: an explicit
/// [`ContainmentOptions::level_bound`] below the Theorem 12 bound makes
/// the procedure sound but incomplete, so its verdicts are answers to a
/// *different question* and must never be replayed for a default-bound
/// call (that would be a stale, possibly wrong hit). Clamping at the
/// theorem bound also makes all *sufficient* bounds share one entry:
/// `None`, `Some(theorem)` and any larger bound ask the same exact
/// question.
///
/// The analysis toggle is in the key because the fast path, while
/// verdict-identical, reports different run metadata
/// (`decided_by_analysis`, zero chase conjuncts) — replaying one mode's
/// entry for the other would misreport how the decision was made.
///
/// `max_conjuncts`, `threads` and the budget are deliberately *not* in
/// the key: they never change a decided verdict (exhausted results are
/// never cached, so a tight budget cannot poison later generous calls).
///
/// The active rule set *is* in the key, by its canonical (renaming- and
/// name-invariant) fingerprint: verdicts under different Σ are answers to
/// different questions. A structurally-`Σ_FL` custom set shares the
/// built-in set's fingerprint, so it also shares its cache entries —
/// consistent with it sharing the built-in code paths everywhere else.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    q1: CanonQuery,
    q2: CanonQuery,
    bound: u32,
    analysis: bool,
    sigma: u64,
}

/// The effective bound for [`CacheKey::bound`] (see there). The clamp
/// point is the active rule set's derived bound (the Theorem 12 bound
/// under `Σ_FL`).
fn effective_bound(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, opts: &ContainmentOptions) -> u32 {
    let theorem = crate::decide::derived_bound(opts, q1.size(), q2.size());
    opts.level_bound.map_or(theorem, |b| b.min(theorem))
}

/// A cached verdict: everything in a [`ContainmentResult`] except the
/// witnessing homomorphism, which is expressed in the original queries'
/// variables and does not survive canonical renaming.
#[derive(Clone, Debug)]
struct CachedDecision {
    verdict: Verdict,
    vacuous: bool,
    chase_conjuncts: usize,
    chase_outcome: ChaseOutcome,
    level_bound: u32,
    max_chase_level: u32,
    decided_by_analysis: bool,
}

impl CachedDecision {
    fn strip(r: &ContainmentResult) -> CachedDecision {
        CachedDecision {
            verdict: r.verdict,
            vacuous: r.vacuous,
            chase_conjuncts: r.chase_conjuncts,
            chase_outcome: r.chase_outcome,
            level_bound: r.level_bound,
            max_chase_level: r.max_chase_level,
            decided_by_analysis: r.decided_by_analysis,
        }
    }

    fn restore(&self) -> ContainmentResult {
        ContainmentResult {
            verdict: self.verdict,
            vacuous: self.vacuous,
            witness: None,
            chase_conjuncts: self.chase_conjuncts,
            chase_outcome: self.chase_outcome,
            level_bound: self.level_bound,
            max_chase_level: self.max_chase_level,
            decided_by_analysis: self.decided_by_analysis,
        }
    }
}

/// A memo table for containment decisions (see the module docs).
///
/// Thread-safe (a mutex around a hash map — lookups are far cheaper than
/// the decisions they save, so contention is not a concern). Cached
/// results carry no [`ContainmentResult::witness`]; ask the uncached
/// [`crate::contains_with`] when the homomorphism itself is needed.
///
/// ```
/// use flogic_core::DecisionCache;
/// use flogic_syntax::parse_query;
/// let cache = DecisionCache::new();
/// let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
/// assert!(cache.contains(&q1, &q2).unwrap().holds());
/// // A renamed-apart copy of the same pair is answered from the cache.
/// let q1r = parse_query("q(A, C) :- sub(B, C), sub(A, B).").unwrap();
/// assert!(cache.contains(&q1r, &q2).unwrap().holds());
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DecisionCache {
    inner: Mutex<HashMap<CacheKey, CachedDecision>>,
}

impl DecisionCache {
    /// Creates an empty cache.
    pub fn new() -> DecisionCache {
        DecisionCache::default()
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("decision cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached decision.
    pub fn clear(&self) {
        self.inner.lock().expect("decision cache poisoned").clear();
    }

    fn lookup(&self, key: &CacheKey) -> Option<CachedDecision> {
        let hit = self
            .inner
            .lock()
            .expect("decision cache poisoned")
            .get(key)
            .cloned();
        match hit {
            Some(d) => {
                Metrics::global().record_cache_hit();
                Some(d)
            }
            None => {
                Metrics::global().record_cache_miss();
                None
            }
        }
    }

    fn store(&self, key: CacheKey, result: &ContainmentResult) {
        // An exhausted verdict is a statement about the budget that
        // happened to govern this run, not about the pair; caching it
        // would replay "undecided" for callers with generous budgets.
        if result.is_exhausted() {
            return;
        }
        self.inner
            .lock()
            .expect("decision cache poisoned")
            .insert(key, CachedDecision::strip(result));
    }

    /// [`crate::contains`] through the cache.
    pub fn contains(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> Result<ContainmentResult, CoreError> {
        self.contains_with(q1, q2, &ContainmentOptions::default())
    }

    /// [`crate::contains_with`] through the cache. Errors (arity mismatch,
    /// resource exhaustion) are never cached.
    pub fn contains_with(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
    ) -> Result<ContainmentResult, CoreError> {
        let key = CacheKey {
            q1: canonicalize(q1),
            q2: canonicalize(q2),
            bound: effective_bound(q1, q2, opts),
            analysis: opts.analysis,
            sigma: opts.sigma.fingerprint(),
        };
        let hit = self.lookup(&key);
        let was_hit = hit.is_some();
        opts.trace
            .emit(|| flogic_obs::ChaseEvent::CacheLookup { hit: was_hit });
        if let Some(hit) = hit {
            return Ok(hit.restore());
        }
        let result = contains_with(q1, q2, opts)?;
        self.store(key, &result);
        Ok(result)
    }

    /// Like [`contains_with`](DecisionCache::contains_with), but a miss is
    /// filled by `compute` instead of a fresh [`crate::contains_with`].
    ///
    /// This is the seam that lets a resident service stack its own reuse
    /// layer *under* the memo table: the `flqd` server passes a closure
    /// that decides through its byte-capped
    /// [`ChaseSnapshot`](crate::ChaseSnapshot) cache, so a canonical-pair
    /// hit skips everything and a miss still skips the chase when the
    /// snapshot is warm.
    ///
    /// `compute` must answer exactly the question `(q1, q2, opts)` poses —
    /// same verdict as [`crate::contains_with`] — or the table gets
    /// poisoned for every later caller. The usual store rules apply:
    /// errors and exhausted verdicts are never cached.
    pub fn contains_with_compute(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
        compute: impl FnOnce() -> Result<ContainmentResult, CoreError>,
    ) -> Result<ContainmentResult, CoreError> {
        let key = CacheKey {
            q1: canonicalize(q1),
            q2: canonicalize(q2),
            bound: effective_bound(q1, q2, opts),
            analysis: opts.analysis,
            sigma: opts.sigma.fingerprint(),
        };
        let hit = self.lookup(&key);
        let was_hit = hit.is_some();
        opts.trace
            .emit(|| flogic_obs::ChaseEvent::CacheLookup { hit: was_hit });
        if let Some(hit) = hit {
            return Ok(hit.restore());
        }
        let result = compute()?;
        self.store(key, &result);
        Ok(result)
    }

    /// [`crate::contains_batch`] through the cache: pairs already decided
    /// (up to renaming) are answered from the memo table, within-batch
    /// repeats of the same canonical pair are decided once and fanned out,
    /// and the single shared chase of `q1` is built only when at least one
    /// pair misses.
    pub fn contains_batch(
        &self,
        q1: &ConjunctiveQuery,
        q2s: &[ConjunctiveQuery],
        opts: &ContainmentOptions,
    ) -> Vec<Result<ContainmentResult, CoreError>> {
        let canon_q1 = canonicalize(q1);
        let keys: Vec<CacheKey> = q2s
            .iter()
            .map(|q2| CacheKey {
                q1: canon_q1.clone(),
                q2: canonicalize(q2),
                // Per-pair effective bound, even though the shared chase is
                // built to the batch maximum: a verdict computed at a bound
                // ≥ the pair's own effective bound answers exactly the
                // per-pair question (Theorem 12 completeness).
                bound: effective_bound(q1, q2, opts),
                analysis: opts.analysis,
                sigma: opts.sigma.fingerprint(),
            })
            .collect();

        // One representative slot per canonical pair that misses the memo
        // table; later occurrences of the same key are served from the
        // representative's computation and count as hits.
        let mut rep: HashMap<&CacheKey, usize> = HashMap::new();
        let mut dup_of: Vec<Option<usize>> = vec![None; q2s.len()];
        let mut out: Vec<Option<Result<ContainmentResult, CoreError>>> =
            Vec::with_capacity(q2s.len());
        for (i, key) in keys.iter().enumerate() {
            let was_hit;
            if let Some(&r) = rep.get(key) {
                Metrics::global().record_cache_hit();
                dup_of[i] = Some(r);
                out.push(None);
                was_hit = true;
            } else if let Some(d) = self.lookup(key) {
                out.push(Some(Ok(d.restore())));
                was_hit = true;
            } else {
                rep.insert(key, i);
                out.push(None);
                was_hit = false;
            }
            opts.trace
                .emit(|| flogic_obs::ChaseEvent::CacheLookup { hit: was_hit });
        }

        let missed: Vec<usize> = (0..q2s.len())
            .filter(|&i| out[i].is_none() && dup_of[i].is_none())
            .collect();
        if !missed.is_empty() {
            let missed_qs: Vec<ConjunctiveQuery> = missed.iter().map(|&i| q2s[i].clone()).collect();
            let computed = contains_batch(q1, &missed_qs, opts);
            for (&i, result) in missed.iter().zip(computed) {
                if let Ok(r) = &result {
                    self.store(keys[i].clone(), r);
                }
                out[i] = Some(result);
            }
        }
        for i in 0..q2s.len() {
            if let Some(r) = dup_of[i] {
                // The representative's witness is keyed by *its* q2's
                // variables, not this occurrence's; strip it like any
                // other cache hit.
                out[i] = Some(match out[r].as_ref().expect("representative filled") {
                    Ok(res) => Ok(CachedDecision::strip(res).restore()),
                    Err(e) => Err(e.clone()),
                });
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::theorem_bound;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn canonical_form_ignores_variable_names_and_atom_order() {
        let a = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let b = q("p(A, C) :- sub(B, C), sub(A, B).");
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn canonical_form_distinguishes_different_shapes() {
        let a = q("q(X) :- member(X, c1).");
        let b = q("q(X) :- member(X, c2).");
        assert_ne!(canonicalize(&a), canonicalize(&b));
        let c = q("q(X) :- member(X, Y).");
        assert_ne!(canonicalize(&a), canonicalize(&c));
    }

    #[test]
    fn canonical_form_respects_variable_sharing() {
        // sub(X, X) is not sub(X, Y): the numbering tells them apart.
        let a = q("q() :- sub(X, X).");
        let b = q("q() :- sub(X, Y).");
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn renamed_pair_hits_the_cache() {
        let cache = DecisionCache::new();
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        let before = Metrics::global().snapshot();
        let first = cache.contains(&q1, &q2).unwrap();
        assert!(first.holds());
        assert_eq!(cache.len(), 1);

        // Rename everything apart and shuffle the body: still one entry.
        let q1r = q("qq(U, W) :- sub(V, W), sub(U, V).");
        let q2r = q("pp(A, B) :- sub(A, B).");
        let second = cache.contains(&q1r, &q2r).unwrap();
        assert!(second.holds());
        assert!(second.witness().is_none(), "cache hits carry no witness");
        assert_eq!(cache.len(), 1);
        let delta = Metrics::global().snapshot().since(&before);
        assert!(delta.cache_hits >= 1);
        assert!(delta.cache_misses >= 1);
    }

    #[test]
    fn different_bounds_are_different_questions() {
        let cache = DecisionCache::new();
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let tight = ContainmentOptions {
            level_bound: Some(0),
            ..Default::default()
        };
        assert!(!cache.contains_with(&q1, &q2, &tight).unwrap().holds());
        // The exact (Theorem 12) bound is a separate entry, not a stale hit.
        assert!(cache.contains(&q1, &q2).unwrap().holds());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bounds_at_or_above_theorem_share_one_entry() {
        let cache = DecisionCache::new();
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        assert!(cache.contains(&q1, &q2).unwrap().holds());
        // Any explicit bound ≥ the theorem bound asks the same exact
        // question as the default and must hit the same entry.
        let generous = ContainmentOptions {
            level_bound: Some(theorem_bound(&q1, &q2) + 100),
            ..Default::default()
        };
        let before = Metrics::global().snapshot();
        assert!(cache.contains_with(&q1, &q2, &generous).unwrap().holds());
        let delta = Metrics::global().snapshot().since(&before);
        assert!(delta.cache_hits >= 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn analysis_toggle_is_part_of_the_key() {
        let cache = DecisionCache::new();
        // Decided by the analyzer when analysis is on, by the chase when
        // off: a cross-toggle hit would misreport how the run was decided.
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- member(X, Z).");
        let on = cache.contains(&q1, &q2).unwrap();
        assert!(on.decided_by_analysis());
        let off = cache
            .contains_with(
                &q1,
                &q2,
                &ContainmentOptions {
                    analysis: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!off.decided_by_analysis(), "stale cross-toggle hit");
        assert_eq!(on.holds(), off.holds());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn exhausted_verdicts_are_never_cached() {
        let cache = DecisionCache::new();
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let tight = ContainmentOptions {
            max_conjuncts: 5,
            analysis: false,
            ..Default::default()
        };
        let r = cache.contains_with(&q1, &q2, &tight).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(cache.len(), 0, "undecided runs must not occupy the table");
        // The budget is not part of the key, so a generous rerun lands on
        // the *same* key — and must recompute, decide, and cache.
        let generous = ContainmentOptions {
            analysis: false,
            ..Default::default()
        };
        assert!(cache.contains_with(&q1, &q2, &generous).unwrap().holds());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batch_mixes_hits_misses_and_errors() {
        let cache = DecisionCache::new();
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let contained = q("qq(O, D) :- member(O, D).");
        // Pre-seed one pair.
        assert!(cache.contains(&q1, &contained).unwrap().holds());

        let batch = vec![
            q("a(O, D) :- member(O, D)."), // renamed copy: hit
            q("b(O, D) :- sub(O, D)."),    // distinct pair: miss
            q("c(X) :- member(X, Y)."),    // arity mismatch: error
        ];
        let results = cache.contains_batch(&q1, &batch, &ContainmentOptions::default());
        assert!(results[0].as_ref().unwrap().holds());
        assert!(
            !results[1].as_ref().unwrap().holds(),
            "sub(O,D) is not implied"
        );
        assert!(matches!(results[2], Err(CoreError::ArityMismatch { .. })));
        // Hit + two computed entries (errors are not cached).
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn batch_dedupes_within_batch_repeats() {
        let cache = DecisionCache::new();
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let a = q("a(O, D) :- member(O, D).");
        let renamed = a.rename_apart(&a);
        let results = cache.contains_batch(&q1, &[a, renamed], &ContainmentOptions::default());
        assert!(results[0].as_ref().unwrap().holds());
        assert!(results[1].as_ref().unwrap().holds());
        // The repeat is served from the representative's computation; like
        // any hit it carries no witness (the representative's substitution
        // is keyed by different variable names).
        assert!(results[0].as_ref().unwrap().witness().is_some());
        assert!(results[1].as_ref().unwrap().witness().is_none());
        assert_eq!(cache.len(), 1, "one canonical pair, one entry");
    }
}
