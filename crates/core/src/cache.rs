//! Containment-decision caching keyed by canonical query pairs.
//!
//! Deciding `q1 ⊆_ΣFL q2` is expensive (a bounded chase plus a
//! backtracking homomorphism search), while real workloads — query
//! minimisation, union checks, many users asking about syntactic variants
//! of the same schema queries — keep asking *semantically identical*
//! questions. [`DecisionCache`] memoizes verdicts under a **semantic
//! canonical form**: the classic core ([`flogic_hom::classic_core`])
//! under a deterministic total variable/atom ordering. Renamed variables,
//! permuted conjuncts and redundant (core-foldable) atoms all land on the
//! same entry, because classically equivalent queries answer every
//! Σ-containment question alike (equivalent queries have identical
//! answers on every database, hence on every model of Σ).
//!
//! The total ordering replaces an earlier greedy pass whose tie-breaking
//! fell back to input order, so isomorphic queries could get distinct
//! keys. The new pass backtracks over tied choices and emits the
//! lexicographically least complete encoding; for any two isomorphic
//! queries within the (deterministic) search budget the encodings are
//! equal, so equal keys are now both sound *and* — up to the budget —
//! complete: equal keys always mean equivalent queries, and equivalent
//! queries get equal keys unless a pathologically symmetric body exhausts
//! [`CANON_NODE_BUDGET`], in which case the pass degrades to the greedy
//! choice and the only cost is a possible extra recomputation, never a
//! wrong answer.
//!
//! Canonicalization is governed by [`ContainmentOptions::canon`]
//! (default on; `flqd` exposes `--no-canon`): with it off, keys use the
//! structural form only (no core), reproducing the pre-semantic
//! behaviour. Truncated runs (an explicit level bound *below* the
//! Theorem 12 bound) always key structurally with their effective bound —
//! their verdicts answer a bound-dependent question about the literal
//! query, not its core, and must never be replayed across bounds.
//!
//! Cache hits/misses and canonicalization passes are reported to the
//! process-global [`flogic_term::Metrics`] (`flq_canon_*` counters),
//! which `flq --metrics` and the benchmark harness print.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use flogic_chase::ChaseOutcome;
use flogic_hom::classic_core;
use flogic_model::{Atom, ConjunctiveQuery, Pred};
use flogic_term::{Metrics, Symbol, Term};

use crate::decide::{
    contains_batch, contains_with, derived_bound, ContainmentOptions, ContainmentResult, Verdict,
};
use crate::CoreError;

/// A term in canonical form: variables are replaced by their
/// first-occurrence index (head first, then the canonically ordered
/// body), everything else is kept verbatim.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum CanonTerm {
    /// A rigid constant, by name.
    Const(Symbol),
    /// A labelled null (cannot appear in well-formed queries, but the
    /// canonicalization is total anyway), by id.
    Null(u64),
    /// A variable, by first-occurrence index.
    Var(u32),
}

/// A query in canonical form. Two queries with equal `CanonQuery`s are
/// identical up to variable renaming and body-conjunct order, hence
/// `Σ_FL`-equivalent — they answer every containment question alike.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct CanonQuery {
    pub(crate) head: Vec<CanonTerm>,
    pub(crate) body: Vec<(Pred, Vec<CanonTerm>)>,
}

/// Ordering key for an atom *under a partial variable numbering*:
/// constants sort by name, numbered variables by their number, and
/// not-yet-numbered variables by their first-occurrence pattern within
/// the atom (so `sub(U, U)` and `sub(U, V)` stay distinguishable).
/// Derived `Ord` puts `Const < Null < Var < Fresh`, which mirrors how the
/// terms compare once the fresh variables are numbered: freshly numbered
/// variables always receive indices above every already-numbered one, so
/// minimising `atom_key`s is the same as minimising emitted encodings.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum KeyTerm {
    Const(&'static str),
    Null(u64),
    Var(u32),
    Fresh(u32),
}

/// An atom encoded under a *complete* numbering (no `Fresh` inside):
/// one entry of the canonical encoding the search minimises.
type EncodedAtom = (usize, Vec<KeyTerm>);

fn atom_key(atom: &Atom, numbering: &HashMap<Symbol, u32>) -> EncodedAtom {
    let mut local: HashMap<Symbol, u32> = HashMap::new();
    let args = atom
        .args()
        .iter()
        .map(|t| match t {
            Term::Const(s) => KeyTerm::Const(s.as_str()),
            Term::Null(n) => KeyTerm::Null(n.0),
            Term::Var(v) => match numbering.get(v) {
                Some(&n) => KeyTerm::Var(n),
                None => {
                    let next = local.len() as u32;
                    KeyTerm::Fresh(*local.entry(*v).or_insert(next))
                }
            },
        })
        .collect();
    (atom.pred().index(), args)
}

/// Numbers an atom's variables into `numbering` (extending it with fresh
/// indices in argument order) and returns the fully-numbered encoding.
fn number_atom(atom: &Atom, numbering: &mut HashMap<Symbol, u32>) -> EncodedAtom {
    let args = atom
        .args()
        .iter()
        .map(|t| match t {
            Term::Const(s) => KeyTerm::Const(s.as_str()),
            Term::Null(n) => KeyTerm::Null(n.0),
            Term::Var(v) => {
                let next = numbering.len() as u32;
                KeyTerm::Var(*numbering.entry(*v).or_insert(next))
            }
        })
        .collect();
    (atom.pred().index(), args)
}

/// Cap on the number of *extra* branches (beyond the greedy first choice)
/// the tie-backtracking search may explore per query. Real queries hit a
/// handful of ties at most; the cap only bites on pathologically
/// symmetric bodies, where the pass deterministically degrades to the
/// greedy choice for the branches it cannot afford — costing at worst a
/// cache miss, never a wrong hit.
const CANON_NODE_BUDGET: usize = 512;

/// Backtracking search for the lexicographically least body encoding.
///
/// Each round computes every remaining atom's [`atom_key`] **once**
/// (the earlier greedy pass rebuilt both sides' keys inside every
/// `min_by` comparison — O(n³) key builds on wide bodies; this is O(n²)
/// plus whatever tie branches the budget admits). Because `atom_key`
/// ordering agrees with emitted-encoding ordering (see [`KeyTerm`]), the
/// minimal-key atoms are exactly the candidates for the least encoding's
/// next entry, so restricting branching to them loses nothing.
struct CanonSearch<'a> {
    atoms: &'a [Atom],
    budget: usize,
}

impl CanonSearch<'_> {
    /// The emission order (indices into `self.atoms`) of the least
    /// encoding reachable within budget, starting from `numbering`.
    fn emission_order(mut self, numbering: &HashMap<Symbol, u32>) -> Vec<usize> {
        let remaining: Vec<usize> = (0..self.atoms.len()).collect();
        self.search(&remaining, numbering).1
    }

    fn search(
        &mut self,
        remaining: &[usize],
        numbering: &HashMap<Symbol, u32>,
    ) -> (Vec<EncodedAtom>, Vec<usize>) {
        if remaining.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let keys: Vec<EncodedAtom> = remaining
            .iter()
            .map(|&i| atom_key(&self.atoms[i], numbering))
            .collect();
        let min = keys.iter().min().expect("remaining is non-empty");
        // Tied positions, deduplicated: literally identical atoms lead to
        // identical states, so exploring one of them suffices.
        let mut tied: Vec<usize> = Vec::new();
        for (pos, key) in keys.iter().enumerate() {
            if key == min
                && !tied
                    .iter()
                    .any(|&p| self.atoms[remaining[p]] == self.atoms[remaining[pos]])
            {
                tied.push(pos);
            }
        }
        let take = tied.len().min(self.budget + 1);
        self.budget -= take - 1;
        let mut best: Option<(Vec<EncodedAtom>, Vec<usize>)> = None;
        for &pos in &tied[..take] {
            let idx = remaining[pos];
            let mut extended = numbering.clone();
            let entry = number_atom(&self.atoms[idx], &mut extended);
            let rest: Vec<usize> = remaining.iter().copied().filter(|&j| j != idx).collect();
            let (tail, order) = self.search(&rest, &extended);
            let mut enc = Vec::with_capacity(tail.len() + 1);
            enc.push(entry);
            enc.extend(tail);
            let better = match &best {
                None => true,
                Some((b, _)) => enc < *b,
            };
            if better {
                let mut ord = Vec::with_capacity(order.len() + 1);
                ord.push(idx);
                ord.extend(order);
                best = Some((enc, ord));
            }
        }
        best.expect("at least one branch explored")
    }
}

fn assign(t: &Term, numbering: &mut HashMap<Symbol, u32>) -> CanonTerm {
    match t {
        Term::Const(s) => CanonTerm::Const(*s),
        Term::Null(n) => CanonTerm::Null(n.0),
        Term::Var(v) => {
            let next = numbering.len() as u32;
            CanonTerm::Var(*numbering.entry(*v).or_insert(next))
        }
    }
}

/// Computes the *structural* canonical form: number the head variables in
/// head order (the head is the one part of a query whose order is
/// semantically fixed), then emit body atoms in the order found by
/// [`CanonSearch`], extending the numbering with each emitted atom's
/// fresh variables. Also returns the emission order (indices into
/// `q.body()`) and the final variable numbering, so callers can rebuild a
/// real [`ConjunctiveQuery`] in canonical shape.
fn canonicalize_full(q: &ConjunctiveQuery) -> (CanonQuery, Vec<usize>, HashMap<Symbol, u32>) {
    let mut numbering: HashMap<Symbol, u32> = HashMap::new();
    let head = q.head().iter().map(|t| assign(t, &mut numbering)).collect();
    let order = CanonSearch {
        atoms: q.body(),
        budget: CANON_NODE_BUDGET,
    }
    .emission_order(&numbering);
    let mut body = Vec::with_capacity(order.len());
    for &i in &order {
        let atom = &q.body()[i];
        body.push((
            atom.pred(),
            atom.args()
                .iter()
                .map(|t| assign(t, &mut numbering))
                .collect(),
        ));
    }
    (CanonQuery { head, body }, order, numbering)
}

fn canonicalize(q: &ConjunctiveQuery) -> CanonQuery {
    canonicalize_full(q).0
}

/// The semantic half of a cache key — the canonicalized classic core plus
/// the core's size — with the pass recorded on the global metrics.
fn semantic_parts(q: &ConjunctiveQuery) -> (CanonQuery, usize) {
    let start = Instant::now();
    let core = classic_core(q);
    let reduced = core.size() < q.size();
    let canon = canonicalize(&core);
    Metrics::global().record_canon(start.elapsed(), reduced);
    (canon, core.size())
}

/// The semantic canonical representative of `q` as a real query: the
/// classic core with canonical variable names (`C0`, `C1`, … in canonical
/// numbering order) and body atoms in canonical emission order. The query
/// name is preserved (containment ignores it).
///
/// Every query in an equivalence class maps to the *same* representative
/// (up to the search budget, see the module docs), so deciding on the
/// representative instead of the original makes *everything* downstream —
/// decision-cache keys, chase-snapshot keys, derived level bounds —
/// agree across syntactic variants. This is how `flqd` unifies variant
/// traffic: it substitutes the representatives up front and runs the
/// whole decision stack on them.
///
/// The pass is recorded on the process-global [`Metrics`]
/// (`flq_canon_keys`, `flq_canon_reduced`, `flq_canon_nanos`).
///
/// ```
/// use flogic_core::canonical_query;
/// use flogic_syntax::parse_query;
/// let a = parse_query("q(X) :- member(X, C), sub(C, D).").unwrap();
/// // Renamed, reordered, and with a redundant (core-foldable) copy.
/// let b = parse_query("q(U) :- sub(K, L), member(U, K), member(U, M), sub(M, N).").unwrap();
/// assert_eq!(canonical_query(&a), canonical_query(&b));
/// ```
pub fn canonical_query(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let start = Instant::now();
    let core = classic_core(q);
    let reduced = core.size() < q.size();
    let (_, order, numbering) = canonicalize_full(&core);
    let rename = |t: &Term| match t {
        Term::Var(v) => Term::var(&format!("C{}", numbering[v])),
        other => *other,
    };
    let head: Vec<Term> = core.head().iter().map(rename).collect();
    let body: Vec<Atom> = order
        .iter()
        .map(|&i| {
            let a = &core.body()[i];
            let args: Vec<Term> = a.args().iter().map(rename).collect();
            Atom::new(a.pred(), &args).expect("renaming preserves arity")
        })
        .collect();
    let out = ConjunctiveQuery::new(core.name(), head, body)
        .expect("canonical renaming preserves well-formedness");
    Metrics::global().record_canon(start.elapsed(), reduced);
    out
}

/// The canonical representatives of a pair, when substituting them is
/// sound for the run `opts` describes: [`ContainmentOptions::canon`] must
/// be on and the run must be *exact* (no explicit level bound below the
/// bound derived from the original sizes). Returns `None` otherwise —
/// truncated runs answer a bound-dependent question about the literal
/// queries, so their inputs must be left alone.
///
/// On `Some((c1, c2))`, deciding `c1 ⊆ c2` under the bound derived from
/// the *core* sizes gives the same verdict as the original pair under its
/// own derived bound: classically equivalent queries have identical
/// answers on every model of Σ, and Theorem 12 applied to the core pair
/// is complete for that question.
pub fn canonical_pair(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
    if !opts.canon {
        return None;
    }
    let derived = derived_bound(opts, q1.size(), q2.size());
    if opts.level_bound.is_some_and(|b| b < derived) {
        return None;
    }
    Some((canonical_query(q1), canonical_query(q2)))
}

/// An opaque, hashable canonical key for a single query.
///
/// [`QueryKey::of`] is the *semantic* key (classic core + total
/// ordering): equal keys mean classically equivalent queries, which
/// answer every `Σ`-containment question alike. [`QueryKey::structural`]
/// skips the core: equal keys mean identical up to variable renaming and
/// body-conjunct order only.
///
/// This is the per-query half of the [`DecisionCache`] key, exported so
/// resident services can key *their own* caches with the same discipline
/// (the `flqd` snapshot cache keys chase snapshots structurally, because
/// the server substitutes [`canonical_query`] representatives up front).
///
/// ```
/// use flogic_core::QueryKey;
/// use flogic_syntax::parse_query;
/// let a = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let b = parse_query("p(A, C) :- sub(B, C), sub(A, B).").unwrap();
/// assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
/// // A redundant atom folds into the core, so the semantic keys agree …
/// let c = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z), sub(X, W), sub(W, Z).").unwrap();
/// assert_eq!(QueryKey::of(&a), QueryKey::of(&c));
/// // … while the structural keys (no core) see different bodies.
/// assert_ne!(QueryKey::structural(&a), QueryKey::structural(&c));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QueryKey(CanonQuery);

impl QueryKey {
    /// The semantic canonical key of `q`: its classic core under the
    /// deterministic total ordering. Invariant under renaming, body
    /// permutation, and redundant-atom insertion. Records the pass on
    /// the global `flq_canon_*` metrics.
    pub fn of(q: &ConjunctiveQuery) -> QueryKey {
        QueryKey(semantic_parts(q).0)
    }

    /// The structural canonical key of `q`: the total ordering without
    /// core reduction. Invariant under renaming and body permutation
    /// only — redundant atoms stay part of the key. Use this when the
    /// keyed artifact depends on the query's literal body (e.g. a chase
    /// built to a bound derived from `q`'s size).
    pub fn structural(q: &ConjunctiveQuery) -> QueryKey {
        QueryKey(canonicalize(q))
    }
}

/// Cache key: a canonical pair plus a level bound, the analysis toggle
/// and the rule-set fingerprint.
///
/// Two key shapes share the table, told apart by their `bound`:
///
/// * **Exact, semantic** (canon on, no truncating explicit bound): `q1`
///   and `q2` are the canonicalized *cores*, and `bound` is re-derived
///   from the **core** sizes — so every variant with the same cores lands
///   on one key even though the variants' own sizes (hence their own
///   Theorem 12 bounds) differ.
/// * **Structural** (canon off, or an explicit bound below the derived
///   one): `q1`/`q2` are the structural forms of the literal queries and
///   `bound` is the *effective* bound `min(requested, derived)`. An
///   explicit bound below the derived one makes the procedure sound but
///   incomplete, so its verdicts answer a *different question* and must
///   never be replayed for an exact call. Clamping at the derived bound
///   also makes all *sufficient* bounds share one entry.
///
/// The shapes cannot collide wrongly: if a structural key ever equals a
/// semantic key, the structural query *is* (isomorphic to) a core, so the
/// bound derived from its own sizes equals the semantic entry's
/// core-derived bound — and then either the structural entry is an exact
/// canon-off entry asking the very same question (sharing is a correct
/// bonus hit), or it is truncated and its strictly smaller bound keeps
/// the entries apart.
///
/// The analysis toggle is in the key because the fast path, while
/// verdict-identical, reports different run metadata
/// (`decided_by_analysis`, zero chase conjuncts) — replaying one mode's
/// entry for the other would misreport how the decision was made.
///
/// `max_conjuncts`, `threads` and the budget are deliberately *not* in
/// the key: they never change a decided verdict (exhausted results are
/// never cached, so a tight budget cannot poison later generous calls).
///
/// The active rule set *is* in the key, by its canonical (renaming- and
/// name-invariant) fingerprint: verdicts under different Σ are answers to
/// different questions. A structurally-`Σ_FL` custom set shares the
/// built-in set's fingerprint, so it also shares its cache entries —
/// consistent with it sharing the built-in code paths everywhere else.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct CacheKey {
    pub(crate) q1: CanonQuery,
    pub(crate) q2: CanonQuery,
    pub(crate) bound: u32,
    pub(crate) analysis: bool,
    pub(crate) sigma: u64,
}

/// The cache key a [`DecisionCache`] lookup would use for `(q1, q2)`
/// under `opts` — exposed crate-internally so the persistence codec
/// ([`crate::decision_key_bytes`]) serializes *exactly* the key the
/// in-RAM tier hashes, shapes and all.
pub(crate) fn pair_cache_key(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> CacheKey {
    PairKeyer::new(opts).key(q1, q2)
}

/// Builds [`CacheKey`]s for one `q1` against one or many `q2`s, computing
/// each canonical form of `q1` at most once (the batch path shares it
/// across the whole batch).
struct PairKeyer<'a> {
    opts: &'a ContainmentOptions,
    sigma: u64,
    structural_q1: Option<CanonQuery>,
    semantic_q1: Option<(CanonQuery, usize)>,
}

impl<'a> PairKeyer<'a> {
    fn new(opts: &'a ContainmentOptions) -> PairKeyer<'a> {
        PairKeyer {
            opts,
            sigma: opts.sigma.fingerprint(),
            structural_q1: None,
            semantic_q1: None,
        }
    }

    fn key(&mut self, q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> CacheKey {
        let derived = derived_bound(self.opts, q1.size(), q2.size());
        let effective = self.opts.level_bound.map_or(derived, |b| b.min(derived));
        if self.opts.canon && effective == derived {
            let (c1, s1) = self
                .semantic_q1
                .get_or_insert_with(|| semantic_parts(q1))
                .clone();
            let (c2, s2) = semantic_parts(q2);
            CacheKey {
                q1: c1,
                q2: c2,
                bound: derived_bound(self.opts, s1, s2),
                analysis: self.opts.analysis,
                sigma: self.sigma,
            }
        } else {
            CacheKey {
                q1: self
                    .structural_q1
                    .get_or_insert_with(|| canonicalize(q1))
                    .clone(),
                q2: canonicalize(q2),
                bound: effective,
                analysis: self.opts.analysis,
                sigma: self.sigma,
            }
        }
    }
}

/// A cached verdict: everything in a [`ContainmentResult`] except the
/// witnessing homomorphism, which is expressed in the original queries'
/// variables and does not survive canonical renaming.
#[derive(Clone, Debug)]
struct CachedDecision {
    verdict: Verdict,
    vacuous: bool,
    chase_conjuncts: usize,
    chase_outcome: ChaseOutcome,
    level_bound: u32,
    max_chase_level: u32,
    decided_by_analysis: bool,
}

impl CachedDecision {
    fn strip(r: &ContainmentResult) -> CachedDecision {
        CachedDecision {
            verdict: r.verdict,
            vacuous: r.vacuous,
            chase_conjuncts: r.chase_conjuncts,
            chase_outcome: r.chase_outcome,
            level_bound: r.level_bound,
            max_chase_level: r.max_chase_level,
            decided_by_analysis: r.decided_by_analysis,
        }
    }

    fn restore(&self) -> ContainmentResult {
        ContainmentResult {
            verdict: self.verdict,
            vacuous: self.vacuous,
            witness: None,
            chase_conjuncts: self.chase_conjuncts,
            chase_outcome: self.chase_outcome,
            level_bound: self.level_bound,
            max_chase_level: self.max_chase_level,
            decided_by_analysis: self.decided_by_analysis,
        }
    }
}

/// A memo table for containment decisions (see the module docs).
///
/// Thread-safe (a mutex around a hash map — lookups are far cheaper than
/// the decisions they save, so contention is not a concern). Cached
/// results carry no [`ContainmentResult::witness`]; ask the uncached
/// [`crate::contains_with`] when the homomorphism itself is needed. A
/// miss is always computed on the *original* pair, so the first caller
/// does get its witness in its own variable names.
///
/// ```
/// use flogic_core::DecisionCache;
/// use flogic_syntax::parse_query;
/// let cache = DecisionCache::new();
/// let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
/// assert!(cache.contains(&q1, &q2).unwrap().holds());
/// // A renamed-apart copy of the same pair is answered from the cache.
/// let q1r = parse_query("q(A, C) :- sub(B, C), sub(A, B).").unwrap();
/// assert!(cache.contains(&q1r, &q2).unwrap().holds());
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DecisionCache {
    inner: Mutex<HashMap<CacheKey, CachedDecision>>,
}

impl DecisionCache {
    /// Creates an empty cache.
    pub fn new() -> DecisionCache {
        DecisionCache::default()
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("decision cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached decision.
    pub fn clear(&self) {
        self.inner.lock().expect("decision cache poisoned").clear();
    }

    fn lookup(&self, key: &CacheKey) -> Option<CachedDecision> {
        let hit = self
            .inner
            .lock()
            .expect("decision cache poisoned")
            .get(key)
            .cloned();
        match hit {
            Some(d) => {
                Metrics::global().record_cache_hit();
                Some(d)
            }
            None => {
                Metrics::global().record_cache_miss();
                None
            }
        }
    }

    fn store(&self, key: CacheKey, result: &ContainmentResult) {
        // An exhausted verdict is a statement about the budget that
        // happened to govern this run, not about the pair; caching it
        // would replay "undecided" for callers with generous budgets.
        if result.is_exhausted() {
            return;
        }
        self.inner
            .lock()
            .expect("decision cache poisoned")
            .insert(key, CachedDecision::strip(result));
    }

    /// [`crate::contains`] through the cache.
    pub fn contains(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> Result<ContainmentResult, CoreError> {
        self.contains_with(q1, q2, &ContainmentOptions::default())
    }

    /// [`crate::contains_with`] through the cache. Errors (arity mismatch,
    /// resource exhaustion) are never cached.
    pub fn contains_with(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
    ) -> Result<ContainmentResult, CoreError> {
        self.contains_with_compute(q1, q2, opts, || contains_with(q1, q2, opts))
    }

    /// Like [`contains_with`](DecisionCache::contains_with), but a miss is
    /// filled by `compute` instead of a fresh [`crate::contains_with`].
    ///
    /// This is the seam that lets a resident service stack its own reuse
    /// layer *under* the memo table: the `flqd` server passes a closure
    /// that decides through its byte-capped
    /// [`ChaseSnapshot`](crate::ChaseSnapshot) cache, so a canonical-pair
    /// hit skips everything and a miss still skips the chase when the
    /// snapshot is warm.
    ///
    /// `compute` must answer exactly the question `(q1, q2, opts)` poses —
    /// same verdict as [`crate::contains_with`] — or the table gets
    /// poisoned for every later caller. The usual store rules apply:
    /// errors and exhausted verdicts are never cached.
    pub fn contains_with_compute(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
        compute: impl FnOnce() -> Result<ContainmentResult, CoreError>,
    ) -> Result<ContainmentResult, CoreError> {
        let key = PairKeyer::new(opts).key(q1, q2);
        let hit = self.lookup(&key);
        let was_hit = hit.is_some();
        opts.trace
            .emit(|| flogic_obs::ChaseEvent::CacheLookup { hit: was_hit });
        if let Some(hit) = hit {
            return Ok(hit.restore());
        }
        let result = compute()?;
        self.store(key, &result);
        Ok(result)
    }

    /// [`crate::contains_batch`] through the cache: pairs already decided
    /// (up to semantic equivalence) are answered from the memo table,
    /// within-batch repeats of the same canonical pair are decided once
    /// and fanned out, and the single shared chase of `q1` is built only
    /// when at least one pair misses. `q1`'s canonical forms are computed
    /// once for the whole batch.
    pub fn contains_batch(
        &self,
        q1: &ConjunctiveQuery,
        q2s: &[ConjunctiveQuery],
        opts: &ContainmentOptions,
    ) -> Vec<Result<ContainmentResult, CoreError>> {
        let mut keyer = PairKeyer::new(opts);
        // Per-pair effective bound, even though the shared chase is built
        // to the batch maximum: a verdict computed at a bound ≥ the
        // pair's own effective bound answers exactly the per-pair
        // question (Theorem 12 completeness).
        let keys: Vec<CacheKey> = q2s.iter().map(|q2| keyer.key(q1, q2)).collect();

        // One representative slot per canonical pair that misses the memo
        // table; later occurrences of the same key are served from the
        // representative's computation and count as hits.
        let mut rep: HashMap<&CacheKey, usize> = HashMap::new();
        let mut dup_of: Vec<Option<usize>> = vec![None; q2s.len()];
        let mut out: Vec<Option<Result<ContainmentResult, CoreError>>> =
            Vec::with_capacity(q2s.len());
        for (i, key) in keys.iter().enumerate() {
            let was_hit;
            if let Some(&r) = rep.get(key) {
                Metrics::global().record_cache_hit();
                dup_of[i] = Some(r);
                out.push(None);
                was_hit = true;
            } else if let Some(d) = self.lookup(key) {
                out.push(Some(Ok(d.restore())));
                was_hit = true;
            } else {
                rep.insert(key, i);
                out.push(None);
                was_hit = false;
            }
            opts.trace
                .emit(|| flogic_obs::ChaseEvent::CacheLookup { hit: was_hit });
        }

        let missed: Vec<usize> = (0..q2s.len())
            .filter(|&i| out[i].is_none() && dup_of[i].is_none())
            .collect();
        if !missed.is_empty() {
            let missed_qs: Vec<ConjunctiveQuery> = missed.iter().map(|&i| q2s[i].clone()).collect();
            let computed = contains_batch(q1, &missed_qs, opts);
            for (&i, result) in missed.iter().zip(computed) {
                if let Ok(r) = &result {
                    self.store(keys[i].clone(), r);
                }
                out[i] = Some(result);
            }
        }
        for i in 0..q2s.len() {
            if let Some(r) = dup_of[i] {
                // The representative's witness is keyed by *its* q2's
                // variables, not this occurrence's; strip it like any
                // other cache hit.
                out[i] = Some(match out[r].as_ref().expect("representative filled") {
                    Ok(res) => Ok(CachedDecision::strip(res).restore()),
                    Err(e) => Err(e.clone()),
                });
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::theorem_bound;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn canonical_form_ignores_variable_names_and_atom_order() {
        let a = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let b = q("p(A, C) :- sub(B, C), sub(A, B).");
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn canonical_form_distinguishes_different_shapes() {
        let a = q("q(X) :- member(X, c1).");
        let b = q("q(X) :- member(X, c2).");
        assert_ne!(canonicalize(&a), canonicalize(&b));
        let c = q("q(X) :- member(X, Y).");
        assert_ne!(canonicalize(&a), canonicalize(&c));
    }

    #[test]
    fn canonical_form_respects_variable_sharing() {
        // sub(X, X) is not sub(X, Y): the numbering tells them apart.
        let a = q("q() :- sub(X, X).");
        let b = q("q() :- sub(X, Y).");
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn symmetric_ties_are_resolved_canonically() {
        // Before any variable is numbered, both body atoms key as
        // (sub, [fresh0, fresh1]) — a symmetric tie. The old greedy pass
        // fell back to input order here, so these two renamings of the
        // same path query got distinct keys; the backtracking search
        // picks the least complete encoding for both.
        let a = q("q() :- sub(X, Y), sub(Y, Z).");
        let b = q("q() :- sub(B, C), sub(A, B).");
        assert_eq!(canonicalize(&a), canonicalize(&b));
        // Deeper tie: two interleaved chains, emitted from whichever end
        // minimises the encoding regardless of input order.
        let c = q("r() :- sub(X, Y), sub(Y, Z), member(M, Y).");
        let d = q("r() :- sub(V2, V3), member(V4, V2), sub(V1, V2).");
        assert_eq!(canonicalize(&c), canonicalize(&d));
    }

    #[test]
    fn canonical_query_unifies_variants() {
        let a = q("q(X) :- member(X, C), sub(C, D).");
        let b = q("p(U) :- sub(K2, L2), member(U, K2), member(U, K1), sub(K1, L1).");
        let ca = canonical_query(&a);
        let cb = canonical_query(&b);
        assert_eq!(ca.head(), cb.head());
        assert_eq!(ca.body(), cb.body());
        assert_eq!(ca.size(), 2, "redundant pair folded into the core");
    }

    #[test]
    fn semantic_keys_fold_redundant_atoms() {
        let a = q("q(X) :- member(X, C), sub(C, D).");
        let b = q("p(U) :- member(U, C1), sub(C1, D1), member(U, C2), sub(C2, D2).");
        assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
        assert_ne!(QueryKey::structural(&a), QueryKey::structural(&b));
    }

    #[test]
    fn renamed_pair_hits_the_cache() {
        let cache = DecisionCache::new();
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        let before = Metrics::global().snapshot();
        let first = cache.contains(&q1, &q2).unwrap();
        assert!(first.holds());
        assert_eq!(cache.len(), 1);

        // Rename everything apart and shuffle the body: still one entry.
        let q1r = q("qq(U, W) :- sub(V, W), sub(U, V).");
        let q2r = q("pp(A, B) :- sub(A, B).");
        let second = cache.contains(&q1r, &q2r).unwrap();
        assert!(second.holds());
        assert!(second.witness().is_none(), "cache hits carry no witness");
        assert_eq!(cache.len(), 1);
        let delta = Metrics::global().snapshot().since(&before);
        assert!(delta.cache_hits >= 1);
        assert!(delta.cache_misses >= 1);
        assert!(delta.canon_keys >= 4, "semantic keys record canon passes");
    }

    #[test]
    fn core_equivalent_pair_hits_the_cache() {
        let cache = DecisionCache::new();
        let q1 = q("q(X) :- member(X, C), sub(C, D).");
        let q2 = q("r(O) :- member(O, C).");
        assert!(cache.contains(&q1, &q2).unwrap().holds());
        assert_eq!(cache.len(), 1);
        // A variant with a redundant copy of the member/sub pair reduces
        // to the same core, so it must be answered from the cache.
        let q1v = q("qq(U) :- member(U, K1), sub(K1, L1), member(U, K2), sub(K2, L2).");
        let before = Metrics::global().snapshot();
        assert!(cache.contains(&q1v, &q2).unwrap().holds());
        let delta = Metrics::global().snapshot().since(&before);
        assert!(delta.cache_hits >= 1);
        assert_eq!(cache.len(), 1, "one semantic class, one entry");
    }

    #[test]
    fn canon_off_keys_structurally() {
        let cache = DecisionCache::new();
        let off = ContainmentOptions {
            canon: false,
            ..Default::default()
        };
        let q1 = q("q(X) :- member(X, C), sub(C, D).");
        let q1v = q("qq(U) :- member(U, K1), sub(K1, L1), member(U, K2), sub(K2, L2).");
        let q2 = q("r(O) :- member(O, C).");
        assert!(cache.contains_with(&q1, &q2, &off).unwrap().holds());
        assert!(cache.contains_with(&q1v, &q2, &off).unwrap().holds());
        assert_eq!(cache.len(), 2, "canon off: variants key separately");
        // Renaming alone still hits (the structural form handles it).
        let q1r = q("z(A) :- sub(B, C), member(A, B).");
        assert!(cache.contains_with(&q1r, &q2, &off).unwrap().holds());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_bounds_are_different_questions() {
        let cache = DecisionCache::new();
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let tight = ContainmentOptions {
            level_bound: Some(0),
            ..Default::default()
        };
        assert!(!cache.contains_with(&q1, &q2, &tight).unwrap().holds());
        // The exact (Theorem 12) bound is a separate entry, not a stale hit.
        assert!(cache.contains(&q1, &q2).unwrap().holds());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bounds_at_or_above_theorem_share_one_entry() {
        let cache = DecisionCache::new();
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        assert!(cache.contains(&q1, &q2).unwrap().holds());
        // Any explicit bound ≥ the theorem bound asks the same exact
        // question as the default and must hit the same entry.
        let generous = ContainmentOptions {
            level_bound: Some(theorem_bound(&q1, &q2) + 100),
            ..Default::default()
        };
        let before = Metrics::global().snapshot();
        assert!(cache.contains_with(&q1, &q2, &generous).unwrap().holds());
        let delta = Metrics::global().snapshot().since(&before);
        assert!(delta.cache_hits >= 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn analysis_toggle_is_part_of_the_key() {
        let cache = DecisionCache::new();
        // Decided by the analyzer when analysis is on, by the chase when
        // off: a cross-toggle hit would misreport how the run was decided.
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- member(X, Z).");
        let on = cache.contains(&q1, &q2).unwrap();
        assert!(on.decided_by_analysis());
        let off = cache
            .contains_with(
                &q1,
                &q2,
                &ContainmentOptions {
                    analysis: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!off.decided_by_analysis(), "stale cross-toggle hit");
        assert_eq!(on.holds(), off.holds());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn exhausted_verdicts_are_never_cached() {
        let cache = DecisionCache::new();
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let tight = ContainmentOptions {
            max_conjuncts: 5,
            analysis: false,
            ..Default::default()
        };
        let r = cache.contains_with(&q1, &q2, &tight).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(cache.len(), 0, "undecided runs must not occupy the table");
        // The budget is not part of the key, so a generous rerun lands on
        // the *same* key — and must recompute, decide, and cache.
        let generous = ContainmentOptions {
            analysis: false,
            ..Default::default()
        };
        assert!(cache.contains_with(&q1, &q2, &generous).unwrap().holds());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batch_mixes_hits_misses_and_errors() {
        let cache = DecisionCache::new();
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let contained = q("qq(O, D) :- member(O, D).");
        // Pre-seed one pair.
        assert!(cache.contains(&q1, &contained).unwrap().holds());

        let batch = vec![
            q("a(O, D) :- member(O, D)."), // renamed copy: hit
            q("b(O, D) :- sub(O, D)."),    // distinct pair: miss
            q("c(X) :- member(X, Y)."),    // arity mismatch: error
        ];
        let results = cache.contains_batch(&q1, &batch, &ContainmentOptions::default());
        assert!(results[0].as_ref().unwrap().holds());
        assert!(
            !results[1].as_ref().unwrap().holds(),
            "sub(O,D) is not implied"
        );
        assert!(matches!(results[2], Err(CoreError::ArityMismatch { .. })));
        // Hit + two computed entries (errors are not cached).
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn batch_dedupes_within_batch_repeats() {
        let cache = DecisionCache::new();
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let a = q("a(O, D) :- member(O, D).");
        let renamed = a.rename_apart(&a);
        let results = cache.contains_batch(&q1, &[a, renamed], &ContainmentOptions::default());
        assert!(results[0].as_ref().unwrap().holds());
        assert!(results[1].as_ref().unwrap().holds());
        // The repeat is served from the representative's computation; like
        // any hit it carries no witness (the representative's substitution
        // is keyed by different variable names).
        assert!(results[0].as_ref().unwrap().witness().is_some());
        assert!(results[1].as_ref().unwrap().witness().is_none());
        assert_eq!(cache.len(), 1, "one canonical pair, one entry");
    }
}
