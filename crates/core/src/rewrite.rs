//! Equivalence and `Σ_FL`-aware query minimisation.

use flogic_model::ConjunctiveQuery;

use crate::decide::{contains_with, ContainmentOptions};
use crate::CoreError;

/// Decides `q1 ≡_ΣFL q2` (containment in both directions).
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool, CoreError> {
    equivalent_with(q1, q2, &ContainmentOptions::default())
}

/// [`equivalent`] with explicit options.
pub fn equivalent_with(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<bool, CoreError> {
    // `require_decided` keeps an exhausted check from silently reading as
    // "not equivalent".
    Ok(contains_with(q1, q2, opts)?.require_decided()?.holds()
        && contains_with(q2, q1, opts)?.require_decided()?.holds())
}

/// Minimises `q` under `Σ_FL`: repeatedly drops a body conjunct as long as
/// the smaller query is `Σ_FL`-equivalent to the original.
///
/// Dropping a conjunct relaxes a query (`q ⊆ q'` always holds when
/// `body(q') ⊆ body(q)`), so only the direction `q' ⊆_ΣFL q` needs
/// checking. Because the check runs under the constraints, this removes
/// conjuncts that classic minimisation ([`flogic_hom::classic_core`])
/// cannot: e.g. in `member(X, C), sub(C, D), member(X, D)` the last atom
/// is implied by ρ3 and is dropped here but kept classically.
///
/// The result depends on removal order only up to `Σ_FL`-equivalence; atoms
/// are tried left to right for determinism.
///
/// ```
/// use flogic_syntax::parse_query;
/// // member(X, D) is implied by rho3; classic minimisation must keep it.
/// let q = parse_query("q(X) :- member(X, C), sub(C, D), member(X, D).").unwrap();
/// let m = flogic_core::minimize(&q).unwrap();
/// assert_eq!(m.size(), 2);
/// ```
pub fn minimize(q: &ConjunctiveQuery) -> Result<ConjunctiveQuery, CoreError> {
    minimize_with(q, &ContainmentOptions::default())
}

/// [`minimize`] with explicit options.
pub fn minimize_with(
    q: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<ConjunctiveQuery, CoreError> {
    let mut current = q.clone();
    loop {
        let mut shrunk = None;
        for i in 0..current.body().len() {
            let Some(candidate) = current.without_atom(i) else {
                continue;
            };
            // An exhausted check must not silently keep the conjunct (it
            // would make minimisation budget-dependent): error out.
            if contains_with(&candidate, &current, opts)?
                .require_decided()?
                .holds()
            {
                shrunk = Some(candidate);
                break;
            }
        }
        match shrunk {
            Some(smaller) => current = smaller,
            None => return Ok(current),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_hom::classic_core;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn renamed_queries_are_equivalent() {
        let a = q("q(X) :- member(X, C), sub(C, D).");
        let b = q("p(U) :- member(U, V), sub(V, W).");
        assert!(equivalent(&a, &b).unwrap());
    }

    #[test]
    fn strict_containment_is_not_equivalence() {
        let a = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let b = q("p(X, Z) :- sub(X, Z).");
        assert!(!equivalent(&a, &b).unwrap());
    }

    #[test]
    fn sigma_minimization_beats_classic_core() {
        // member(X, D) is implied by rho3 from member(X, C), sub(C, D).
        let query = q("q(X) :- member(X, C), sub(C, D), member(X, D).");
        let classic = classic_core(&query);
        assert_eq!(classic.size(), 3, "classically nothing is redundant");
        let minimal = minimize(&query).unwrap();
        assert_eq!(minimal.size(), 2, "rho3 makes member(X, D) redundant");
        assert!(equivalent(&minimal, &query).unwrap());
    }

    #[test]
    fn transitive_sub_edge_is_redundant() {
        let query = q("q(X) :- sub(X, Y), sub(Y, Z), sub(X, Z).");
        let minimal = minimize(&query).unwrap();
        assert_eq!(minimal.size(), 2);
    }

    #[test]
    fn minimal_query_is_fixed_point() {
        let query = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let minimal = minimize(&query).unwrap();
        assert_eq!(minimal.size(), 2, "the chain itself is not redundant");
        let again = minimize(&minimal).unwrap();
        assert_eq!(minimal.size(), again.size());
    }

    #[test]
    fn inherited_type_atom_is_redundant() {
        // type(O, A, T) follows from member(O, C), type(C, A, T) via rho6.
        let query = q("q(O, A, T) :- member(O, C), type(C, A, T), type(O, A, T).");
        let minimal = minimize(&query).unwrap();
        assert_eq!(minimal.size(), 2);
    }

    #[test]
    fn head_protecting_atoms_survive() {
        let query = q("q(V) :- data(O, A, V), member(O, C).");
        let minimal = minimize(&query).unwrap();
        // data binds the head var; member is genuinely independent.
        assert_eq!(minimal.size(), 2);
    }
}
