//! Errors of the containment layer.

use std::fmt;

use flogic_chase::ExhaustReason;

/// Errors raised by the containment procedures.
///
/// Budget exhaustion is **not** an error for the core three-valued APIs
/// ([`contains_with`](crate::contains_with) /
/// [`contains_batch`](crate::contains_batch) report it through
/// [`Verdict::Exhausted`](crate::Verdict::Exhausted) with partial stats);
/// the [`DecideError::Exhausted`] variant is raised only by the APIs whose
/// answer is meaningless on a partial chase (`explain`, the union checks,
/// the naive baseline, `equivalent`/`minimize`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecideError {
    /// Containment is only defined between queries of the same arity
    /// (Theorem 4).
    ArityMismatch {
        /// Arity of `q1`.
        q1: usize,
        /// Arity of `q2`.
        q2: usize,
    },
    /// A resource limit stopped the chase before the Theorem 12 bound was
    /// reached, and the caller's question cannot be answered from a
    /// partial chase. Records how far the chase got.
    Exhausted {
        /// Which limit fired.
        reason: ExhaustReason,
        /// Conjuncts materialized when the run stopped.
        conjuncts: usize,
        /// Deepest chase level completed when the run stopped.
        levels: u32,
    },
    /// A parallel chase discovery worker panicked; the panic was caught at
    /// the join so the process (and the rest of a batch) survives.
    WorkerFailed {
        /// The worker's panic payload, when it was a string.
        detail: String,
    },
    /// A query failed to parse (only from the string-level API).
    Syntax(String),
}

/// The pre-governor name of [`DecideError`], kept as an alias for
/// downstream code.
pub type CoreError = DecideError;

impl fmt::Display for DecideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecideError::ArityMismatch { q1, q2 } => {
                write!(f, "containment needs equal arities, got {q1} vs {q2}")
            }
            DecideError::Exhausted {
                reason,
                conjuncts,
                levels,
            } => {
                write!(
                    f,
                    "chase stopped by {reason} at {conjuncts} conjuncts / level {levels}, \
                     before reaching the Theorem 12 bound; raise the budget"
                )
            }
            DecideError::WorkerFailed { detail } => {
                write!(f, "chase discovery worker failed: {detail}")
            }
            DecideError::Syntax(e) => write!(f, "syntax error: {e}"),
        }
    }
}

impl std::error::Error for DecideError {}

impl From<flogic_chase::ChaseError> for DecideError {
    fn from(e: flogic_chase::ChaseError) -> DecideError {
        match e {
            flogic_chase::ChaseError::WorkerFailed { detail } => {
                DecideError::WorkerFailed { detail }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(DecideError::ArityMismatch { q1: 1, q2: 2 }
            .to_string()
            .contains("1 vs 2"));
        let e = DecideError::Exhausted {
            reason: ExhaustReason::Deadline,
            conjuncts: 9,
            levels: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("deadline"));
        assert!(DecideError::WorkerFailed {
            detail: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn chase_error_converts() {
        let e: DecideError = flogic_chase::ChaseError::WorkerFailed { detail: "x".into() }.into();
        assert_eq!(e, DecideError::WorkerFailed { detail: "x".into() });
    }
}
