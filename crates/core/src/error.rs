//! Errors of the containment layer.

use std::fmt;

/// Errors raised by the containment procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// Containment is only defined between queries of the same arity
    /// (Theorem 4).
    ArityMismatch {
        /// Arity of `q1`.
        q1: usize,
        /// Arity of `q2`.
        q2: usize,
    },
    /// The chase hit its conjunct safety cap before reaching the Theorem 12
    /// level bound; the verdict cannot be certified. Raise
    /// `ContainmentOptions::max_conjuncts`.
    ResourcesExhausted {
        /// Conjuncts materialized when the cap was hit.
        conjuncts: usize,
    },
    /// A query failed to parse (only from the string-level API).
    Syntax(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch { q1, q2 } => {
                write!(f, "containment needs equal arities, got {q1} vs {q2}")
            }
            CoreError::ResourcesExhausted { conjuncts } => {
                write!(
                    f,
                    "chase truncated at {conjuncts} conjuncts before reaching the \
                     Theorem 12 bound; raise max_conjuncts"
                )
            }
            CoreError::Syntax(e) => write!(f, "syntax error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(CoreError::ArityMismatch { q1: 1, q2: 2 }
            .to_string()
            .contains("1 vs 2"));
        assert!(CoreError::ResourcesExhausted { conjuncts: 9 }
            .to_string()
            .contains('9'));
    }
}
