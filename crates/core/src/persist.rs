//! Stable byte encodings of decision-cache keys and cached verdicts.
//!
//! The in-RAM [`DecisionCache`](crate::DecisionCache) hashes its keys
//! in-process, so it can lean on [`Symbol`]'s interner ids — which are
//! assigned in first-intern order and are therefore **not** stable
//! across processes. A durable tier (see the `flogic-store` crate and
//! `docs/STORAGE.md`) needs keys and values that mean the same thing
//! after a restart, so this module defines a portable encoding:
//!
//! * constants and variables are serialized **by name** (length-prefixed
//!   UTF-8), never by interner id;
//! * predicates are serialized by their [`Pred::index`], which is fixed
//!   by the `Σ_FL` signature and stable by construction;
//! * canonical variables are serialized by their first-occurrence index,
//!   which the canonicalization pass already makes deterministic;
//! * all integers are little-endian and fixed-width.
//!
//! [`decision_key_bytes`] serializes *exactly* the key the in-RAM tier
//! would hash for the same `(q1, q2, opts)` triple — both key shapes
//! (semantic and structural, see [`crate::DecisionCache`]), the
//! effective bound, the analysis toggle, and the Σ fingerprint — so the
//! two tiers always agree on which question a persisted entry answers.
//!
//! [`encode_decision`] / [`decode_decision`] round-trip everything a
//! cache hit restores: the three-valued [`Verdict`], the chase outcome,
//! the effective bound and run metadata. Exhausted verdicts are **never
//! encoded** ([`encode_decision`] returns `None`), mirroring the in-RAM
//! rule: an exhausted run describes the budget, not the pair. The
//! witness substitution is not persisted for the same reason it is not
//! cached in RAM — it is expressed in the original queries' variable
//! names, which do not survive canonicalization.
//!
//! Every encoding opens with [`PERSIST_FORMAT_VERSION`]; decoders
//! reject any other version (and any trailing or truncated bytes), so a
//! future format change invalidates old entries instead of misreading
//! them. The full compatibility policy lives in `docs/STORAGE.md`.

use flogic_chase::{ChaseOutcome, ExhaustReason};
use flogic_model::ConjunctiveQuery;
use flogic_term::{NullId, Symbol, Term};

use crate::cache::{pair_cache_key, CanonQuery, CanonTerm};
use crate::decide::{ContainmentOptions, ContainmentResult, Verdict};

/// Version byte leading every persisted key and value produced by this
/// module. Bump on any layout change; decoders reject other versions.
pub const PERSIST_FORMAT_VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// Little-endian write/read helpers over plain byte vectors.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over an encoded buffer; every read is bounds-checked so a
/// corrupt or truncated value decodes to `None`, never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Key encoding.
// ---------------------------------------------------------------------------

fn put_canon_term(out: &mut Vec<u8>, t: &CanonTerm) {
    match t {
        CanonTerm::Const(s) => {
            out.push(0);
            put_str(out, s.as_str());
        }
        CanonTerm::Null(n) => {
            out.push(1);
            put_u64(out, *n);
        }
        CanonTerm::Var(v) => {
            out.push(2);
            put_u32(out, *v);
        }
    }
}

fn put_canon_query(out: &mut Vec<u8>, q: &CanonQuery) {
    put_u32(out, q.head.len() as u32);
    for t in &q.head {
        put_canon_term(out, t);
    }
    put_u32(out, q.body.len() as u32);
    for (pred, args) in &q.body {
        out.push(pred.index() as u8);
        put_u32(out, args.len() as u32);
        for t in args {
            put_canon_term(out, t);
        }
    }
}

/// The portable byte key a durable decision tier should file
/// `(q1, q2, opts)` under.
///
/// This is the byte-for-byte serialization of the same [`CacheKey`]
/// shape the in-RAM [`DecisionCache`](crate::DecisionCache) hashes —
/// semantic (canonicalized cores + core-derived bound) when the run is
/// exact and canonicalization is on, structural (literal queries +
/// effective bound) otherwise — so a persisted entry is a hit exactly
/// when the in-RAM tier would have hit, across restarts and across
/// processes with differently-populated interners. Two calls with
/// semantically equivalent inputs produce identical byte keys.
///
/// [`CacheKey`]: crate::DecisionCache
///
/// ```
/// use flogic_core::{decision_key_bytes, ContainmentOptions};
/// use flogic_syntax::parse_query;
/// let opts = ContainmentOptions::default();
/// let a = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let b = parse_query("p(A, C) :- sub(B, C), sub(A, B).").unwrap();
/// let q2 = parse_query("r(X, Z) :- sub(X, Z).").unwrap();
/// assert_eq!(
///     decision_key_bytes(&a, &q2, &opts),
///     decision_key_bytes(&b, &q2, &opts),
/// );
/// ```
pub fn decision_key_bytes(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Vec<u8> {
    let key = pair_cache_key(q1, q2, opts);
    let mut out = Vec::with_capacity(128);
    out.push(PERSIST_FORMAT_VERSION);
    put_canon_query(&mut out, &key.q1);
    put_canon_query(&mut out, &key.q2);
    put_u32(&mut out, key.bound);
    out.push(key.analysis as u8);
    put_u64(&mut out, key.sigma);
    out
}

// ---------------------------------------------------------------------------
// Value encoding.
// ---------------------------------------------------------------------------

fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Const(s) => {
            out.push(0);
            put_str(out, s.as_str());
        }
        Term::Null(n) => {
            out.push(1);
            put_u64(out, n.0);
        }
        Term::Var(v) => {
            out.push(2);
            put_str(out, v.as_str());
        }
    }
}

fn read_term(r: &mut Reader<'_>) -> Option<Term> {
    match r.u8()? {
        0 => Some(Term::Const(Symbol::intern(r.str()?))),
        1 => Some(Term::Null(NullId(r.u64()?))),
        2 => Some(Term::Var(Symbol::intern(r.str()?))),
        _ => None,
    }
}

fn reason_tag(reason: ExhaustReason) -> u8 {
    match reason {
        ExhaustReason::Conjuncts => 0,
        ExhaustReason::Deadline => 1,
        ExhaustReason::Steps => 2,
        ExhaustReason::Bytes => 3,
        ExhaustReason::Cancelled => 4,
    }
}

fn read_reason(tag: u8) -> Option<ExhaustReason> {
    Some(match tag {
        0 => ExhaustReason::Conjuncts,
        1 => ExhaustReason::Deadline,
        2 => ExhaustReason::Steps,
        3 => ExhaustReason::Bytes,
        4 => ExhaustReason::Cancelled,
        _ => return None,
    })
}

/// Serializes a decided [`ContainmentResult`] for the durable tier, or
/// `None` for exhausted verdicts — which must never be persisted: an
/// exhausted run is a statement about the budget that happened to govern
/// it, and replaying "undecided" for future callers with generous
/// budgets would be wrong (the same rule the in-RAM cache enforces).
///
/// The witness substitution is stripped exactly as in-RAM hits strip it;
/// [`decode_decision`] restores `witness: None`. Everything else —
/// verdict, vacuity, chase outcome (including `Failed` clash terms, by
/// name), effective bound, chase size/level, the analysis attribution —
/// round-trips bit-identically, which `tests/store_cross_validation.rs`
/// pins against fresh recomputation.
pub fn encode_decision(r: &ContainmentResult) -> Option<Vec<u8>> {
    if r.is_exhausted() {
        return None;
    }
    let mut out = Vec::with_capacity(32);
    out.push(PERSIST_FORMAT_VERSION);
    out.push(match r.verdict {
        Verdict::Holds => 0,
        Verdict::NotHolds => 1,
        // Unreachable past the is_exhausted gate, but keep the encoder
        // total: refuse rather than write a lying record.
        Verdict::Exhausted(_) => return None,
    });
    out.push(r.vacuous as u8);
    put_u64(&mut out, r.chase_conjuncts as u64);
    match &r.chase_outcome {
        ChaseOutcome::Completed => out.push(0),
        ChaseOutcome::LevelBounded => out.push(1),
        ChaseOutcome::Failed { left, right } => {
            out.push(2);
            put_term(&mut out, left);
            put_term(&mut out, right);
        }
        ChaseOutcome::Exhausted { reason } => {
            out.push(3);
            out.push(reason_tag(*reason));
        }
    }
    put_u32(&mut out, r.level_bound);
    put_u32(&mut out, r.max_chase_level);
    out.push(r.decided_by_analysis as u8);
    Some(out)
}

/// Decodes a value written by [`encode_decision`]. Returns `None` on any
/// corruption: unknown version byte, unknown tag, truncated or trailing
/// bytes. Callers treat `None` as a cache miss and recompute — a corrupt
/// persisted entry can cost a recomputation, never a wrong answer.
pub fn decode_decision(bytes: &[u8]) -> Option<ContainmentResult> {
    let mut r = Reader::new(bytes);
    if r.u8()? != PERSIST_FORMAT_VERSION {
        return None;
    }
    let verdict = match r.u8()? {
        0 => Verdict::Holds,
        1 => Verdict::NotHolds,
        _ => return None,
    };
    let vacuous = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let chase_conjuncts = usize::try_from(r.u64()?).ok()?;
    let chase_outcome = match r.u8()? {
        0 => ChaseOutcome::Completed,
        1 => ChaseOutcome::LevelBounded,
        2 => ChaseOutcome::Failed {
            left: read_term(&mut r)?,
            right: read_term(&mut r)?,
        },
        3 => ChaseOutcome::Exhausted {
            reason: read_reason(r.u8()?)?,
        },
        _ => return None,
    };
    let level_bound = r.u32()?;
    let max_chase_level = r.u32()?;
    let decided_by_analysis = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(ContainmentResult {
        verdict,
        vacuous,
        witness: None,
        chase_conjuncts,
        chase_outcome,
        level_bound,
        max_chase_level,
        decided_by_analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::contains_with;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    fn strip(r: &ContainmentResult) -> ContainmentResult {
        ContainmentResult {
            witness: None,
            ..r.clone()
        }
    }

    fn assert_same(a: &ContainmentResult, b: &ContainmentResult) {
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.vacuous, b.vacuous);
        assert!(a.witness.is_none() && b.witness.is_none());
        assert_eq!(a.chase_conjuncts, b.chase_conjuncts);
        assert_eq!(a.chase_outcome, b.chase_outcome);
        assert_eq!(a.level_bound, b.level_bound);
        assert_eq!(a.max_chase_level, b.max_chase_level);
        assert_eq!(a.decided_by_analysis, b.decided_by_analysis);
    }

    #[test]
    fn key_bytes_agree_across_variants() {
        let opts = ContainmentOptions::default();
        let a = q("q(X) :- member(X, C), sub(C, D).");
        // Renamed, reordered, with a core-foldable redundant pair.
        let b = q("p(U) :- sub(K2, L2), member(U, K2), member(U, K1), sub(K1, L1).");
        let q2 = q("r(O) :- member(O, C).");
        assert_eq!(
            decision_key_bytes(&a, &q2, &opts),
            decision_key_bytes(&b, &q2, &opts)
        );
    }

    #[test]
    fn key_bytes_separate_bounds_and_toggles() {
        let a = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let b = q("p(X, Z) :- sub(X, Z).");
        let base = decision_key_bytes(&a, &b, &ContainmentOptions::default());
        let truncated = decision_key_bytes(
            &a,
            &b,
            &ContainmentOptions {
                level_bound: Some(0),
                ..Default::default()
            },
        );
        assert_ne!(base, truncated, "truncated runs key differently");
        let no_analysis = decision_key_bytes(
            &a,
            &b,
            &ContainmentOptions {
                analysis: false,
                ..Default::default()
            },
        );
        assert_ne!(base, no_analysis, "analysis toggle is part of the key");
    }

    #[test]
    fn decided_results_roundtrip() {
        let opts = ContainmentOptions::default();
        for (s1, s2) in [
            ("q(X, Z) :- sub(X, Y), sub(Y, Z).", "p(X, Z) :- sub(X, Z)."),
            ("q(X, Z) :- sub(X, Z).", "p(X, Z) :- sub(X, Y), sub(Y, Z)."),
            (
                "q() :- mandatory(A, T), type(T, A, T).",
                "qq() :- data(T, A, V), member(V, T).",
            ),
        ] {
            let r = contains_with(&q(s1), &q(s2), &opts).unwrap();
            let bytes = encode_decision(&r).expect("decided result encodes");
            let back = decode_decision(&bytes).expect("own encoding decodes");
            assert_same(&strip(&r), &back);
        }
    }

    #[test]
    fn failed_chase_outcome_roundtrips_terms_by_name() {
        // type(T, A, T) + funct-style clash paths can produce Failed
        // outcomes; synthesize one directly to pin the term codec.
        let r = ContainmentResult {
            verdict: Verdict::Holds,
            vacuous: true,
            witness: None,
            chase_conjuncts: 7,
            chase_outcome: ChaseOutcome::Failed {
                left: Term::constant("alpha"),
                right: Term::Null(NullId(42)),
            },
            level_bound: 3,
            max_chase_level: 2,
            decided_by_analysis: false,
        };
        let back = decode_decision(&encode_decision(&r).unwrap()).unwrap();
        assert_same(&r, &back);
    }

    #[test]
    fn exhausted_results_never_encode() {
        let tight = ContainmentOptions {
            max_conjuncts: 5,
            analysis: false,
            ..Default::default()
        };
        let r = contains_with(
            &q("q() :- mandatory(A, T), type(T, A, T)."),
            &q("qq() :- data(T, A, V), member(V, T)."),
            &tight,
        )
        .unwrap();
        assert!(r.is_exhausted());
        assert!(encode_decision(&r).is_none());
    }

    #[test]
    fn corrupt_values_decode_to_none() {
        let r = contains_with(
            &q("q(X, Z) :- sub(X, Y), sub(Y, Z)."),
            &q("p(X, Z) :- sub(X, Z)."),
            &ContainmentOptions::default(),
        )
        .unwrap();
        let bytes = encode_decision(&r).unwrap();
        // Truncation, trailing garbage, bad version, bad tag.
        assert!(decode_decision(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_decision(&trailing).is_none());
        let mut versioned = bytes.clone();
        versioned[0] = PERSIST_FORMAT_VERSION + 1;
        assert!(decode_decision(&versioned).is_none());
        let mut tagged = bytes.clone();
        tagged[1] = 9;
        assert!(decode_decision(&tagged).is_none());
        assert!(decode_decision(&[]).is_none());
    }
}
