//! The Theorem 12 decision procedure.

use std::sync::Arc;

use flogic_analysis::{classify_rule_set, direct_unsat, QueryAnalysis};
use flogic_chase::{chase_bounded, Budget, Chase, ChaseOptions, ChaseOutcome, ExhaustReason};
use flogic_hom::{find_hom_traced, Target};
use flogic_model::{ConjunctiveQuery, RuleSet};
use flogic_obs::{ChaseEvent, SpanKind, TraceHandle};
use flogic_term::{Metrics, Subst};

use crate::CoreError;

/// Options for [`contains_with`].
///
/// Every knob is verdict-preserving except [`level_bound`] below the
/// Theorem 12 bound (sound but incomplete) and a [`budget`] that actually
/// runs out (the verdict degrades to [`Verdict::Exhausted`]):
///
/// ```
/// use flogic_core::{contains_with, ContainmentOptions, Budget};
/// use flogic_syntax::parse_query;
/// let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
/// let opts = ContainmentOptions {
///     threads: 2,
///     analysis: false,
///     budget: Budget::unlimited().steps(100_000),
///     ..Default::default()
/// };
/// assert!(contains_with(&q1, &q2, &opts).unwrap().holds());
/// ```
///
/// [`level_bound`]: ContainmentOptions::level_bound
/// [`budget`]: ContainmentOptions::budget
#[derive(Clone, Debug)]
pub struct ContainmentOptions {
    /// Chase level bound; `None` uses the Theorem 12 bound
    /// `2·|q1|·|q2|` (see [`theorem_bound`]). A smaller bound makes the
    /// check *sound but incomplete* (a "holds" answer is always right, a
    /// "does not hold" answer may be wrong); a larger bound is never
    /// needed.
    pub level_bound: Option<u32>,
    /// Safety cap on materialized chase conjuncts.
    pub max_conjuncts: usize,
    /// Worker threads for chase rule discovery (see
    /// [`ChaseOptions::threads`]): `1` is fully sequential, `0` uses the
    /// machine's available parallelism. The decision is identical for
    /// every setting.
    pub threads: usize,
    /// Consult the static analyzer (`flogic-analysis`) before chasing:
    /// sound early `false` when `q2` needs a predicate unreachable from
    /// `q1`'s chase frontier, sound early `true` when `q1` carries a
    /// visible ρ4 violation. The verdict is identical with the toggle on
    /// or off; only the work (and the [`Metrics`] analysis counters)
    /// changes. Default: `true`.
    pub analysis: bool,
    /// Resource budget for the chase (deadline, step/byte caps,
    /// cancellation). When a limit fires, the decision comes back as
    /// [`Verdict::Exhausted`] with the partial chase statistics instead of
    /// an error. Default: unlimited.
    pub budget: Budget,
    /// Structured-event sink, threaded down into the chase engine and the
    /// homomorphism search. The default ([`TraceHandle::Disabled`]) costs
    /// one branch per instrumentation site; enabling tracing never changes
    /// the verdict (it only observes). Default: disabled.
    pub trace: TraceHandle,
    /// The active rule set Σ. Default: the built-in `Σ_FL`, which keeps
    /// every code path bit-identical to the classic decider. A custom set
    /// (from `flq --sigma FILE` or `flogic_analysis::admit_sigma`) must be
    /// *admitted* by the Σ-admission analyzer; the default Theorem 12
    /// bound is then replaced by the admission-derived bound for the
    /// set's chase-termination class, and the `Σ_FL`-specific analysis
    /// fast paths are re-derived against the custom set (the `direct
    /// unsat` ρ4 shortcut applies only to `Σ_FL` itself).
    pub sigma: Arc<RuleSet>,
    /// Key caches *semantically*: [`crate::DecisionCache`] keys complete
    /// (non-truncated) decisions by the classic core of each query, so
    /// classically equivalent spellings — renamed variables, permuted
    /// conjuncts, redundant atoms — share one entry. The verdict is
    /// identical with the toggle on or off (a core answers every
    /// Σ-containment question exactly like the query it minimizes); only
    /// hit rates and the [`Metrics`] canon counters change. The
    /// uncached [`contains_with`] ignores this knob entirely.
    /// Default: `true`.
    pub canon: bool,
}

impl Default for ContainmentOptions {
    fn default() -> Self {
        ContainmentOptions {
            level_bound: None,
            max_conjuncts: 1_000_000,
            threads: 1,
            analysis: true,
            budget: Budget::default(),
            trace: TraceHandle::Disabled,
            sigma: RuleSet::sigma_fl().clone(),
            canon: true,
        }
    }
}

/// The Theorem 12 level bound `δ·|q2|` with `δ = 2·|q1|`, where `|q|` is
/// the number of body conjuncts.
pub fn theorem_bound(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> u32 {
    bound_from_sizes(q1.size(), q2.size())
}

/// The Theorem 12 bound `2·n1·n2` from raw body sizes, computed in `u64`
/// and clamped to `u32::MAX`.
///
/// The clamp is sound: Theorem 12 needs *at most* `2·n1·n2` levels, so
/// when the true product exceeds `u32::MAX` the clamped bound only allows
/// the chase to go deeper than required — it can never produce a
/// too-small (unsound) bound the way wrapping `u32` arithmetic would.
/// Astronomical bounds are then governed by
/// [`ContainmentOptions::budget`] rather than by the level cap.
pub fn bound_from_sizes(n1: usize, n2: usize) -> u32 {
    let product = 2u64.saturating_mul(n1 as u64).saturating_mul(n2 as u64);
    u32::try_from(product).unwrap_or(u32::MAX)
}

/// The level bound an options struct implies for body sizes `n1`, `n2`:
/// the explicit [`ContainmentOptions::level_bound`] override if set, the
/// Theorem 12 bound for the built-in `Σ_FL`, or the admission-derived
/// bound of a custom rule set (weakly acyclic sets get the rank-based
/// terminating bound, guarded/sticky sets the `2·n1·n2` shape — see
/// [`flogic_analysis::SigmaAdmission::level_bound`]).
pub(crate) fn sigma_bound(opts: &ContainmentOptions, n1: usize, n2: usize) -> u32 {
    opts.level_bound
        .unwrap_or_else(|| derived_bound(opts, n1, n2))
}

/// The rule-set-derived bound alone, ignoring any explicit
/// [`ContainmentOptions::level_bound`] override (used by
/// [`crate::ChaseSnapshot::covers`], which combines the two itself).
pub(crate) fn derived_bound(opts: &ContainmentOptions, n1: usize, n2: usize) -> u32 {
    if opts.sigma.is_sigma_fl() {
        bound_from_sizes(n1, n2)
    } else {
        classify_rule_set(opts.sigma.clone()).level_bound(n1, n2)
    }
}

/// The three-valued answer of a containment check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `q1 ⊆_ΣFL q2` holds (certified by a witness or a failed chase).
    Holds,
    /// `q1 ⊆_ΣFL q2` does not hold (the full Theorem 12 prefix was
    /// searched and no witness exists).
    NotHolds,
    /// A resource limit stopped the chase before the Theorem 12 prefix
    /// was complete: the question is undecided. Partial progress is in
    /// [`ContainmentResult::chase_conjuncts`] /
    /// [`ContainmentResult::max_chase_level`].
    Exhausted(ExhaustReason),
}

/// Outcome of a containment check.
#[derive(Clone, Debug)]
pub struct ContainmentResult {
    pub(crate) verdict: Verdict,
    pub(crate) vacuous: bool,
    pub(crate) witness: Option<Subst>,
    pub(crate) chase_conjuncts: usize,
    pub(crate) chase_outcome: ChaseOutcome,
    pub(crate) level_bound: u32,
    pub(crate) max_chase_level: u32,
    pub(crate) decided_by_analysis: bool,
}

impl ContainmentResult {
    /// Does `q1 ⊆_ΣFL q2` hold? `false` for both [`Verdict::NotHolds`]
    /// and [`Verdict::Exhausted`] — use [`verdict`](Self::verdict) or
    /// [`is_exhausted`](Self::is_exhausted) to tell them apart.
    pub fn holds(&self) -> bool {
        self.verdict == Verdict::Holds
    }

    /// The three-valued verdict.
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// True when a resource limit stopped the chase and the question is
    /// undecided.
    pub fn is_exhausted(&self) -> bool {
        matches!(self.verdict, Verdict::Exhausted(_))
    }

    /// Converts an [`Verdict::Exhausted`] result into
    /// [`CoreError::Exhausted`], for callers whose answer is meaningless
    /// unless the question was actually decided (`equivalent`,
    /// `minimize`, the union checks). Decided results pass through.
    pub fn require_decided(self) -> Result<ContainmentResult, CoreError> {
        match self.verdict {
            Verdict::Exhausted(reason) => Err(CoreError::Exhausted {
                reason,
                conjuncts: self.chase_conjuncts,
                levels: self.max_chase_level,
            }),
            Verdict::Holds | Verdict::NotHolds => Ok(self),
        }
    }

    /// True when the containment holds because `chase(q1)` failed — i.e.
    /// `q1` is unsatisfiable w.r.t. `Σ_FL` and returns no answers on any
    /// admissible database.
    pub fn is_vacuous(&self) -> bool {
        self.vacuous
    }

    /// The witnessing homomorphism `body(q2) → chase(q1)`, when the
    /// containment holds non-vacuously.
    pub fn witness(&self) -> Option<&Subst> {
        self.witness.as_ref()
    }

    /// Number of conjuncts the bounded chase materialized.
    pub fn chase_conjuncts(&self) -> usize {
        self.chase_conjuncts
    }

    /// How the chase run ended.
    pub fn chase_outcome(&self) -> ChaseOutcome {
        self.chase_outcome
    }

    /// The level bound that was used.
    pub fn level_bound(&self) -> u32 {
        self.level_bound
    }

    /// The deepest level the chase actually reached (≤ the bound).
    pub fn max_chase_level(&self) -> u32 {
        self.max_chase_level
    }

    /// True when the verdict came from the static analyzer's fast path
    /// and no chase was materialized (see
    /// [`ContainmentOptions::analysis`]).
    pub fn decided_by_analysis(&self) -> bool {
        self.decided_by_analysis
    }
}

/// Decides `q1 ⊆_ΣFL q2` with the Theorem 12 bound and default resource
/// limits.
///
/// ```
/// use flogic_syntax::parse_query;
/// // Subclass transitivity (rho2) makes the two-hop query contained in
/// // the one-hop query — a containment classical reasoning misses.
/// let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
/// assert!(flogic_core::contains(&q1, &q2).unwrap().holds());
/// assert!(!flogic_core::contains(&q2, &q1).unwrap().holds());
/// ```
pub fn contains(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Result<ContainmentResult, CoreError> {
    contains_with(q1, q2, &ContainmentOptions::default())
}

/// Decides `q1 ⊆_ΣFL q2` (Theorem 12): builds the level-bounded chase of
/// `q1` and searches for a homomorphism from `body(q2)` into it that maps
/// `head(q2)` onto the (possibly ρ4-rewritten) head of the chase.
pub fn contains_with(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<ContainmentResult, CoreError> {
    if q1.arity() != q2.arity() {
        return Err(CoreError::ArityMismatch {
            q1: q1.arity(),
            q2: q2.arity(),
        });
    }
    let bound = sigma_bound(opts, q1.size(), q2.size());
    let _decide_span = opts.trace.span(SpanKind::Decide);
    let theorem = theorem_bound(q1, q2);
    opts.trace.emit(|| ChaseEvent::Bound {
        level_bound: u64::from(bound),
        theorem_bound: u64::from(theorem),
    });
    if opts.analysis {
        if let Some(early) = analyze_pair(q1, q2, bound, &opts.sigma) {
            return Ok(early);
        }
        Metrics::global().record_analysis_chased();
    }
    let chase = chase_bounded(
        q1,
        &ChaseOptions {
            level_bound: bound,
            max_conjuncts: opts.max_conjuncts,
            threads: opts.threads,
            budget: opts.budget.clone(),
            trace: opts.trace.clone(),
            sigma: opts.sigma.clone(),
        },
    )?;
    match chase.outcome() {
        ChaseOutcome::Failed { .. } => {
            // q1 is unsatisfiable under Σ_FL: q1(B) = ∅ for every admissible
            // B, so q1 ⊆ q2 for every q2 of the same arity.
            return Ok(ContainmentResult {
                verdict: Verdict::Holds,
                vacuous: true,
                witness: None,
                chase_conjuncts: chase.len(),
                chase_outcome: chase.outcome(),
                level_bound: bound,
                max_chase_level: chase.max_level(),
                decided_by_analysis: false,
            });
        }
        ChaseOutcome::Exhausted { reason } => {
            return Ok(exhausted_result(&chase, bound, reason));
        }
        ChaseOutcome::Completed | ChaseOutcome::LevelBounded => {}
    }
    let target = Target::from_chase(&chase);
    let witness = find_hom_traced(q2.body(), q2.head(), &target, chase.head(), &opts.trace);
    Ok(ContainmentResult {
        verdict: if witness.is_some() {
            Verdict::Holds
        } else {
            Verdict::NotHolds
        },
        vacuous: false,
        witness,
        chase_conjuncts: chase.len(),
        chase_outcome: chase.outcome(),
        level_bound: bound,
        max_chase_level: chase.max_level(),
        decided_by_analysis: false,
    })
}

/// The undecided result for a chase stopped by the governor: the partial
/// statistics (conjuncts materialized, deepest level completed) ride along
/// so callers can report how far the run got.
pub(crate) fn exhausted_result(
    chase: &Chase,
    bound: u32,
    reason: ExhaustReason,
) -> ContainmentResult {
    ContainmentResult {
        verdict: Verdict::Exhausted(reason),
        vacuous: false,
        witness: None,
        chase_conjuncts: chase.len(),
        chase_outcome: chase.outcome(),
        level_bound: bound,
        max_chase_level: chase.max_level(),
        decided_by_analysis: false,
    }
}

/// Runs the two static fast paths for one pair. `Some` means the verdict
/// is already certain (and agrees with what the chase would say — see the
/// soundness arguments in `flogic-analysis::fastpath` and `DESIGN.md`).
fn analyze_pair(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    bound: u32,
    sigma: &Arc<RuleSet>,
) -> Option<ContainmentResult> {
    // The visible-ρ4-violation shortcut is specific to Σ_FL's EGD; under
    // a custom rule set it is skipped (soundly: it only ever *adds* an
    // early answer).
    if sigma.is_sigma_fl() {
        if let Some((left, right)) = direct_unsat(q1) {
            // The chase of q1 fails in its first Datalog/EGD phase at every
            // level bound: vacuous containment, no chase needed.
            Metrics::global().record_analysis_early_true();
            return Some(ContainmentResult {
                verdict: Verdict::Holds,
                vacuous: true,
                witness: None,
                chase_conjuncts: 0,
                chase_outcome: ChaseOutcome::Failed { left, right },
                level_bound: bound,
                max_chase_level: 0,
                decided_by_analysis: true,
            });
        }
    }
    let analysis = QueryAnalysis::for_rules(q1, sigma);
    if analysis.refutes_hom(q2) {
        // q2 needs a predicate chase(q1) can never contain, and the chase
        // provably cannot fail: the containment is definitely false.
        Metrics::global().record_analysis_early_false();
        return Some(ContainmentResult {
            verdict: Verdict::NotHolds,
            vacuous: false,
            witness: None,
            chase_conjuncts: 0,
            chase_outcome: ChaseOutcome::Completed,
            level_bound: bound,
            max_chase_level: 0,
            decided_by_analysis: true,
        });
    }
    None
}

/// Decides `q1 ⊆_ΣFL q2` for every `q2` in `q2s`, **sharing one chase of
/// `q1`** across all candidates instead of rebuilding it per pair.
///
/// The shared chase is built to the *largest* per-pair bound (the maximum
/// of `opts.level_bound` or the per-pair Theorem 12 bounds). This stays
/// sound *and* complete for every pair: a homomorphism into any prefix of
/// `chase(q1)` witnesses containment (the chase is a model of `q1` and
/// `Σ_FL`), and Theorem 12 guarantees that when containment holds a
/// witness exists already within the pair's own — hence also within the
/// larger shared — bound. Each result reports the shared bound.
///
/// Candidates whose arity differs from `q1` get
/// [`CoreError::ArityMismatch`] in their slot; one pair failing does not
/// poison the batch. If `chase(q1)` itself fails, every same-arity pair
/// holds vacuously.
///
/// ```
/// use flogic_core::{contains_batch, ContainmentOptions};
/// use flogic_syntax::parse_query;
/// let q1 = parse_query("q(O, D) :- member(O, C), sub(C, D).").unwrap();
/// let q2s = vec![
///     parse_query("a(O, D) :- member(O, D).").unwrap(),
///     parse_query("b(O, D) :- sub(O, D).").unwrap(),
/// ];
/// let results = contains_batch(&q1, &q2s, &ContainmentOptions::default());
/// assert!(results[0].as_ref().unwrap().holds());
/// assert!(!results[1].as_ref().unwrap().holds());
/// ```
pub fn contains_batch(
    q1: &ConjunctiveQuery,
    q2s: &[ConjunctiveQuery],
    opts: &ContainmentOptions,
) -> Vec<Result<ContainmentResult, CoreError>> {
    let bound = q2s
        .iter()
        .filter(|q2| q2.arity() == q1.arity())
        .map(|q2| sigma_bound(opts, q1.size(), q2.size()))
        .max()
        .unwrap_or(0);
    let _decide_span = opts.trace.span(SpanKind::Decide);
    let theorem = q2s
        .iter()
        .filter(|q2| q2.arity() == q1.arity())
        .map(|q2| theorem_bound(q1, q2))
        .max()
        .unwrap_or(0);
    opts.trace.emit(|| ChaseEvent::Bound {
        level_bound: u64::from(bound),
        theorem_bound: u64::from(theorem),
    });
    if opts.analysis && opts.sigma.is_sigma_fl() {
        if let Some((left, right)) = direct_unsat(q1) {
            // One visible ρ4 violation settles every same-arity slot
            // without building the shared chase at all.
            return q2s
                .iter()
                .map(|q2| {
                    if q2.arity() != q1.arity() {
                        return Err(CoreError::ArityMismatch {
                            q1: q1.arity(),
                            q2: q2.arity(),
                        });
                    }
                    Metrics::global().record_analysis_early_true();
                    Ok(ContainmentResult {
                        verdict: Verdict::Holds,
                        vacuous: true,
                        witness: None,
                        chase_conjuncts: 0,
                        chase_outcome: ChaseOutcome::Failed { left, right },
                        level_bound: bound,
                        max_chase_level: 0,
                        decided_by_analysis: true,
                    })
                })
                .collect();
        }
    }
    let analysis = opts
        .analysis
        .then(|| QueryAnalysis::for_rules(q1, &opts.sigma));
    let chase = match chase_bounded(
        q1,
        &ChaseOptions {
            level_bound: bound,
            max_conjuncts: opts.max_conjuncts,
            threads: opts.threads,
            budget: opts.budget.clone(),
            trace: opts.trace.clone(),
            sigma: opts.sigma.clone(),
        },
    ) {
        Ok(chase) => chase,
        // A worker panic poisons only this batch call, not the process;
        // every slot reports the same error.
        Err(e) => {
            let err = CoreError::from(e);
            return q2s.iter().map(|_| Err(err.clone())).collect();
        }
    };
    let failed = chase.is_failed();
    let exhausted = match chase.outcome() {
        ChaseOutcome::Exhausted { reason } => Some(reason),
        _ => None,
    };
    let target = if failed || exhausted.is_some() {
        Target::default()
    } else {
        Target::from_chase(&chase)
    };
    q2s.iter()
        .map(|q2| {
            if q2.arity() != q1.arity() {
                return Err(CoreError::ArityMismatch {
                    q1: q1.arity(),
                    q2: q2.arity(),
                });
            }
            if let Some(reason) = exhausted {
                // Undecided for every slot, with the shared partial stats.
                return Ok(exhausted_result(&chase, bound, reason));
            }
            if failed {
                return Ok(ContainmentResult {
                    verdict: Verdict::Holds,
                    vacuous: true,
                    witness: None,
                    chase_conjuncts: chase.len(),
                    chase_outcome: chase.outcome(),
                    level_bound: bound,
                    max_chase_level: chase.max_level(),
                    decided_by_analysis: false,
                });
            }
            if let Some(a) = &analysis {
                if a.refutes_hom(q2) {
                    // Skip the hom search: q2 needs a predicate the shared
                    // chase cannot contain.
                    Metrics::global().record_analysis_early_false();
                    return Ok(ContainmentResult {
                        verdict: Verdict::NotHolds,
                        vacuous: false,
                        witness: None,
                        chase_conjuncts: chase.len(),
                        chase_outcome: chase.outcome(),
                        level_bound: bound,
                        max_chase_level: chase.max_level(),
                        decided_by_analysis: true,
                    });
                }
                Metrics::global().record_analysis_chased();
            }
            let witness = find_hom_traced(q2.body(), q2.head(), &target, chase.head(), &opts.trace);
            Ok(ContainmentResult {
                verdict: if witness.is_some() {
                    Verdict::Holds
                } else {
                    Verdict::NotHolds
                },
                vacuous: false,
                witness,
                chase_conjuncts: chase.len(),
                chase_outcome: chase.outcome(),
                level_bound: bound,
                max_chase_level: chase.max_level(),
                decided_by_analysis: false,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn paper_joinable_attributes_containment() {
        // Section 2: q(A,B) ⊆ qq(A,B).
        let q1 = q("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].");
        let q2 = q("qq(A,B) :- T1[A*=>T2], T2[B*=>_].");
        let r = contains(&q1, &q2).unwrap();
        assert!(r.holds(), "the paper's first example containment");
        assert!(!r.is_vacuous());
        assert!(r.witness().is_some());
        // And the converse fails.
        assert!(!contains(&q2, &q1).unwrap().holds());
    }

    #[test]
    fn paper_mandatory_attribute_containment() {
        // Section 2, second example.
        let q1 = q("q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.");
        let q2 = q("qq(Att,Class,Type) :- Obj[Att->_], Obj:Class, Class[Att*=>Type].");
        let r = contains(&q1, &q2).unwrap();
        assert!(r.holds(), "the paper's second example containment");
        assert!(!contains(&q2, &q1).unwrap().holds(), "strict containment");
    }

    #[test]
    fn identical_queries_contained_both_ways() {
        let q1 = q("q(X) :- member(X, C), sub(C, D).");
        assert!(contains(&q1, &q1).unwrap().holds());
    }

    #[test]
    fn classical_containment_still_detected() {
        let q1 = q("q(X) :- member(X, c), data(X, a, V).");
        let q2 = q("qq(X) :- member(X, c).");
        assert!(contains(&q1, &q2).unwrap().holds());
        assert!(!contains(&q2, &q1).unwrap().holds());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let q1 = q("q(X) :- member(X, C).");
        let q2 = q("qq(X, Y) :- member(X, Y).");
        assert_eq!(
            contains(&q1, &q2).unwrap_err(),
            CoreError::ArityMismatch { q1: 1, q2: 2 }
        );
    }

    #[test]
    fn vacuous_containment_on_failed_chase() {
        // q1 forces 1 = 2 via a functional attribute: unsatisfiable.
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).");
        let q2 = q("qq() :- sub(X, Y).");
        let r = contains(&q1, &q2).unwrap();
        assert!(r.holds());
        assert!(r.is_vacuous());
    }

    #[test]
    fn subclass_transitivity_containment() {
        // q1 walks two sub edges; q2 wants one: holds only thanks to ρ2.
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("qq(X, Z) :- sub(X, Z).");
        let r = contains(&q1, &q2).unwrap();
        assert!(r.holds(), "needs rho2, not just Chandra-Merlin");
    }

    #[test]
    fn membership_inheritance_containment() {
        // member(O, C), sub(C, D) ⊨ member(O, D) (ρ3).
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let q2 = q("qq(O, D) :- member(O, D).");
        assert!(contains(&q1, &q2).unwrap().holds());
    }

    #[test]
    fn mandatory_cycle_containment_uses_deep_chase() {
        // q1's chase is infinite (Example 2 pattern); q2 asks for a data
        // value of the cyclic attribute — produced by ρ5 at level 1.
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let r = contains(&q1, &q2).unwrap();
        assert!(r.holds(), "needs the bounded rho5 chase");
        assert!(r.max_chase_level() >= 1);
    }

    #[test]
    fn head_rewriting_respected() {
        // Example 1: chase rewrites head (V1, V2) to (V1, V1); a q2 with
        // equal head variables is then a container.
        let q1 = q("q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).");
        let q2 = q("qq(W, W) :- data(O, A, W).");
        let r = contains(&q1, &q2).unwrap();
        assert!(
            r.holds(),
            "head side-effect of rho4 enables the containment"
        );
        // Without the funct atom the head stays (V1, V2) and q2 no longer
        // contains q1.
        let q1_free = q("q(V1, V2) :- data(O, A, V1), data(O, A, V2), member(O, C).");
        assert!(!contains(&q1_free, &q2).unwrap().holds());
    }

    #[test]
    fn custom_bound_is_respected() {
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        // Bound 0: no rho5 level, hom cannot be found.
        let opts = ContainmentOptions {
            level_bound: Some(0),
            max_conjuncts: 10_000,
            ..Default::default()
        };
        assert!(!contains_with(&q1, &q2, &opts).unwrap().holds());
        // The theorem bound finds it.
        assert!(contains(&q1, &q2).unwrap().holds());
    }

    #[test]
    fn resource_cap_is_reported() {
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V).");
        let opts = ContainmentOptions {
            level_bound: None,
            max_conjuncts: 5,
            ..Default::default()
        };
        // Exhaustion is a verdict with partial stats, not an error.
        let r = contains_with(&q1, &q2, &opts).unwrap();
        assert_eq!(r.verdict(), Verdict::Exhausted(ExhaustReason::Conjuncts));
        assert!(r.is_exhausted());
        assert!(!r.holds());
        assert!(r.chase_conjuncts() >= 2, "partial progress reported");
    }

    #[test]
    fn deadline_exhaustion_is_a_verdict() {
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V).");
        let opts = ContainmentOptions {
            budget: Budget::with_timeout(std::time::Duration::ZERO),
            ..Default::default()
        };
        let r = contains_with(&q1, &q2, &opts).unwrap();
        assert_eq!(r.verdict(), Verdict::Exhausted(ExhaustReason::Deadline));
    }

    #[test]
    fn batch_exhaustion_fills_every_slot() {
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2s = vec![q("a() :- data(T, A, V)."), q("b(X) :- sub(X, Y).")];
        let opts = ContainmentOptions {
            max_conjuncts: 5,
            analysis: false,
            ..Default::default()
        };
        let batch = contains_batch(&q1, &q2s, &opts);
        let r = batch[0].as_ref().unwrap();
        assert_eq!(r.verdict(), Verdict::Exhausted(ExhaustReason::Conjuncts));
        // Arity mismatches still win over exhaustion in their slot.
        assert!(matches!(
            batch[1],
            Err(CoreError::ArityMismatch { q1: 0, q2: 1 })
        ));
    }

    #[test]
    fn theorem_bound_formula() {
        let q1 = q("q() :- sub(A, B), sub(B, C), sub(C, D).");
        let q2 = q("qq() :- sub(X, Y), sub(Y, Z).");
        assert_eq!(theorem_bound(&q1, &q2), 2 * 3 * 2);
    }

    #[test]
    fn theorem_bound_clamps_instead_of_wrapping() {
        // 2·2^20·2^20 = 2^41; wrapping u32 arithmetic would yield 0 — an
        // unsound too-small bound. The u64 computation clamps to u32::MAX.
        assert_eq!(bound_from_sizes(1 << 20, 1 << 20), u32::MAX);
        // 2·2^16·2^15 = 2^32 is the first value past u32::MAX: in u32 it
        // would wrap to exactly 0.
        assert_eq!(bound_from_sizes(1 << 16, 1 << 15), u32::MAX);
        // One conjunct fewer on either side stays exact:
        // 2·(2^16−1)·2^15 = 2^32 − 2^16.
        assert_eq!(
            bound_from_sizes((1 << 16) - 1, 1 << 15),
            u32::MAX - (1 << 16) + 1
        );
        // Degenerate and small sizes are exact.
        assert_eq!(bound_from_sizes(0, 100), 0);
        assert_eq!(bound_from_sizes(3, 5), 30);
        // usize::MAX on both sides saturates rather than overflowing u64.
        assert_eq!(bound_from_sizes(usize::MAX, usize::MAX), u32::MAX);
    }

    #[test]
    fn batch_agrees_with_single_pair_checks() {
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let q2s = vec![
            q("a(O, D) :- member(O, D)."),
            q("b(O, D) :- sub(O, D)."),
            q("c(O, D) :- member(O, C), sub(C, D)."),
        ];
        let batch = contains_batch(&q1, &q2s, &ContainmentOptions::default());
        for (q2, br) in q2s.iter().zip(&batch) {
            let single = contains(&q1, q2).unwrap();
            assert_eq!(br.as_ref().unwrap().holds(), single.holds(), "{q2}");
        }
        assert!(batch[0].as_ref().unwrap().holds());
        assert!(!batch[1].as_ref().unwrap().holds());
        assert!(batch[2].as_ref().unwrap().holds());
    }

    #[test]
    fn batch_reports_arity_mismatch_per_slot() {
        let q1 = q("q(X) :- member(X, C).");
        let q2s = vec![q("a(X) :- member(X, C)."), q("b(X, Y) :- member(X, Y).")];
        let batch = contains_batch(&q1, &q2s, &ContainmentOptions::default());
        assert!(batch[0].as_ref().unwrap().holds());
        assert_eq!(
            *batch[1].as_ref().unwrap_err(),
            CoreError::ArityMismatch { q1: 1, q2: 2 }
        );
    }

    #[test]
    fn batch_vacuous_on_failed_chase() {
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).");
        let q2s = vec![q("a() :- sub(X, Y)."), q("b() :- member(X, Y).")];
        let batch = contains_batch(&q1, &q2s, &ContainmentOptions::default());
        for r in &batch {
            let r = r.as_ref().unwrap();
            assert!(r.holds() && r.is_vacuous());
        }
    }

    #[test]
    fn analysis_early_false_agrees_with_chase() {
        // member is underivable from sub alone: the analyzer answers
        // `false` without chasing; the chase path must agree.
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- member(X, Z).");
        let on = contains_with(&q1, &q2, &ContainmentOptions::default()).unwrap();
        let off = contains_with(
            &q1,
            &q2,
            &ContainmentOptions {
                analysis: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(on.decided_by_analysis());
        assert_eq!(on.chase_conjuncts(), 0);
        assert!(!off.decided_by_analysis());
        assert_eq!(on.holds(), off.holds());
        assert_eq!(on.is_vacuous(), off.is_vacuous());
        assert!(!on.holds());
    }

    #[test]
    fn analysis_early_true_agrees_with_chase() {
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).");
        let q2 = q("qq() :- sub(X, Y).");
        let on = contains_with(&q1, &q2, &ContainmentOptions::default()).unwrap();
        let off = contains_with(
            &q1,
            &q2,
            &ContainmentOptions {
                analysis: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(on.decided_by_analysis());
        assert!(matches!(on.chase_outcome(), ChaseOutcome::Failed { .. }));
        assert_eq!(
            (on.holds(), on.is_vacuous()),
            (off.holds(), off.is_vacuous())
        );
        assert!(on.holds() && on.is_vacuous());
    }

    #[test]
    fn analysis_does_not_misfire_when_chase_may_fail() {
        // q1 can fail (two distinct constants + data + funct through
        // membership); analysis must NOT answer early-false even though
        // q2's sub atom is underivable — the chase does fail and the
        // containment is vacuously true.
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), member(o, c), funct(a, c).");
        let q2 = q("qq() :- sub(X, Y).");
        let r = contains(&q1, &q2).unwrap();
        assert!(r.holds() && r.is_vacuous());
    }

    #[test]
    fn batch_analysis_matches_analysis_off() {
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2s = vec![
            q("a(X, Z) :- sub(X, Z)."),
            q("b(X, Z) :- member(X, Z)."),
            q("c(X, Z) :- sub(X, Y), sub(Y, Z), sub(X, Z)."),
        ];
        let on = contains_batch(&q1, &q2s, &ContainmentOptions::default());
        let off = contains_batch(
            &q1,
            &q2s,
            &ContainmentOptions {
                analysis: false,
                ..Default::default()
            },
        );
        for (a, b) in on.iter().zip(&off) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.holds(), b.holds());
            assert_eq!(a.is_vacuous(), b.is_vacuous());
        }
        assert!(on[1].as_ref().unwrap().decided_by_analysis());
        assert!(!on[0].as_ref().unwrap().decided_by_analysis());
    }

    #[test]
    fn constants_in_heads() {
        let q1 = q("q(k) :- member(X, c).");
        let q2 = q("qq(k) :- member(Y, c).");
        assert!(contains(&q1, &q2).unwrap().holds());
        let q3 = q("qq(m) :- member(Y, c).");
        assert!(
            !contains(&q1, &q3).unwrap().holds(),
            "head constants differ"
        );
    }
}
