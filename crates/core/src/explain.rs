//! Explanations: *why* does a containment hold?
//!
//! When `q1 ⊆_ΣFL q2` holds non-vacuously, the evidence is a homomorphism
//! from `body(q2)` into `chase(q1)`. Each image conjunct either comes
//! straight from `body(q1)` or was derived by a chain of `Σ_FL` rule
//! applications; tracing those chains back to level 0 yields a
//! step-by-step, human-readable proof — useful for debugging ontologies
//! and for trusting the optimizer's rewrites.

use std::fmt;

use flogic_chase::{chase_bounded, Chase, ChaseOptions, ChaseOutcome, ConjunctId};
use flogic_hom::{find_hom, Target};
use flogic_model::{Atom, ConjunctiveQuery, RuleId};

use crate::decide::ContainmentOptions;
use crate::CoreError;

/// One step of a derivation: `conclusion` was obtained by applying `rule`
/// to `premises`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationStep {
    /// The rule applied (ρ1 … ρ12).
    pub rule: RuleId,
    /// The premise conjuncts.
    pub premises: Vec<Atom>,
    /// The derived conjunct.
    pub conclusion: Atom,
}

impl fmt::Display for DerivationStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let premises: Vec<String> = self.premises.iter().map(|a| a.to_string()).collect();
        write!(
            f,
            "{} [{}: {}] ==> {}",
            premises.join(", "),
            self.rule,
            self.rule.description(),
            self.conclusion
        )
    }
}

/// A full containment explanation.
#[derive(Clone, Debug)]
pub enum Explanation {
    /// The containment does not hold.
    NotContained,
    /// It holds vacuously: the chase of `q1` failed, `q1` is unsatisfiable.
    Vacuous,
    /// It holds with evidence.
    Witness {
        /// How each conjunct of `body(q2)` maps into the chase of `q1`.
        atom_images: Vec<(Atom, Atom)>,
        /// Derivation steps for every image conjunct not present in
        /// `body(q1)` itself, in dependency order (premises before
        /// conclusions), deduplicated.
        derivations: Vec<DerivationStep>,
    },
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Explanation::NotContained => write!(f, "containment does not hold"),
            Explanation::Vacuous => write!(
                f,
                "containment holds vacuously: chase(q1) failed (rho4 equated two \
                 distinct constants), so q1 has no answers on any Sigma_FL database"
            ),
            Explanation::Witness {
                atom_images,
                derivations,
            } => {
                writeln!(f, "containment holds; witness mapping of body(q2):")?;
                for (src, img) in atom_images {
                    writeln!(f, "  {src}  ->  {img}")?;
                }
                if derivations.is_empty() {
                    write!(
                        f,
                        "every image is a conjunct of body(q1) (classical containment)"
                    )?;
                } else {
                    writeln!(f, "derived conjuncts:")?;
                    for step in derivations {
                        writeln!(f, "  {step}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Collects the derivation of `id` (and everything it depends on) into
/// `steps`, premises first.
fn trace(
    chase: &Chase,
    id: ConjunctId,
    steps: &mut Vec<DerivationStep>,
    seen: &mut Vec<ConjunctId>,
) {
    if seen.contains(&id) {
        return;
    }
    seen.push(id);
    let Some(rule) = chase.rule_of(id) else {
        return;
    };
    let parents = chase.parents_of(id);
    for &p in &parents {
        trace(chase, p, steps, seen);
    }
    let step = DerivationStep {
        rule,
        premises: parents.iter().map(|&p| *chase.atom(p)).collect(),
        conclusion: *chase.atom(id),
    };
    if !steps.contains(&step) {
        steps.push(step);
    }
}

/// Decides `q1 ⊆_ΣFL q2` and, when it holds, explains why: the witness
/// mapping and the `Σ_FL` derivation of every derived image conjunct.
pub fn explain(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<Explanation, CoreError> {
    if q1.arity() != q2.arity() {
        return Err(CoreError::ArityMismatch {
            q1: q1.arity(),
            q2: q2.arity(),
        });
    }
    let bound = crate::decide::sigma_bound(opts, q1.size(), q2.size());
    let chase = chase_bounded(
        q1,
        &ChaseOptions {
            level_bound: bound,
            max_conjuncts: opts.max_conjuncts,
            threads: opts.threads,
            budget: opts.budget.clone(),
            trace: opts.trace.clone(),
            sigma: opts.sigma.clone(),
        },
    )?;
    match chase.outcome() {
        ChaseOutcome::Failed { .. } => return Ok(Explanation::Vacuous),
        ChaseOutcome::Exhausted { reason } => {
            // An explanation over a partial chase would be misleading.
            return Err(CoreError::Exhausted {
                reason,
                conjuncts: chase.len(),
                levels: chase.max_level(),
            });
        }
        ChaseOutcome::Completed | ChaseOutcome::LevelBounded => {}
    }
    let target = Target::from_chase(&chase);
    let Some(hom) = find_hom(q2.body(), q2.head(), &target, chase.head()) else {
        return Ok(Explanation::NotContained);
    };
    let mut atom_images = Vec::new();
    let mut derivations = Vec::new();
    let mut seen = Vec::new();
    for atom in q2.body() {
        let image = atom.apply(&hom);
        if let Some(id) = chase.find(&image) {
            trace(&chase, id, &mut derivations, &mut seen);
        }
        atom_images.push((*atom, image));
    }
    Ok(Explanation::Witness {
        atom_images,
        derivations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }
    fn opts() -> ContainmentOptions {
        ContainmentOptions::default()
    }

    #[test]
    fn classical_containment_has_no_derivations() {
        let q1 = q("q(X) :- member(X, c), data(X, a, V).");
        let q2 = q("qq(X) :- member(X, c).");
        let e = explain(&q1, &q2, &opts()).unwrap();
        let Explanation::Witness {
            atom_images,
            derivations,
        } = e
        else {
            panic!("expected witness")
        };
        assert_eq!(atom_images.len(), 1);
        assert!(derivations.is_empty());
    }

    #[test]
    fn transitivity_explanation_cites_rho2() {
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("qq(X, Z) :- sub(X, Z).");
        let e = explain(&q1, &q2, &opts()).unwrap();
        let Explanation::Witness { derivations, .. } = e else {
            panic!()
        };
        assert_eq!(derivations.len(), 1);
        assert_eq!(derivations[0].rule, RuleId::R2);
        assert_eq!(derivations[0].premises.len(), 2);
    }

    #[test]
    fn pump_explanation_orders_premises_first() {
        // Needs rho10 then rho5 then rho1: derivation order must respect
        // dependencies.
        let q1 = q("q(O) :- member(O, c), mandatory(a, c), type(c, a, t).");
        let q2 = q("qq(O) :- data(O, a, V), member(V, T).");
        let e = explain(&q1, &q2, &opts()).unwrap();
        let Explanation::Witness { derivations, .. } = e else {
            panic!()
        };
        assert!(!derivations.is_empty());
        // Every premise of every step is either a body atom of q1 or the
        // conclusion of an earlier step.
        let mut known: Vec<Atom> = q1.body().to_vec();
        for step in &derivations {
            for p in &step.premises {
                assert!(known.contains(p), "premise {p} not yet established");
            }
            known.push(step.conclusion);
        }
        // rho5 must appear (a value was invented).
        assert!(derivations.iter().any(|s| s.rule == RuleId::R5));
    }

    #[test]
    fn not_contained_and_vacuous_variants() {
        let q1 = q("q(X) :- member(X, c).");
        let q2 = q("qq(X) :- sub(X, c).");
        assert!(matches!(
            explain(&q1, &q2, &opts()).unwrap(),
            Explanation::NotContained
        ));
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).");
        let q2 = q("qq() :- sub(X, Y).");
        assert!(matches!(
            explain(&q1, &q2, &opts()).unwrap(),
            Explanation::Vacuous
        ));
    }

    #[test]
    fn display_is_readable() {
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("qq(X, Z) :- sub(X, Z).");
        let text = explain(&q1, &q2, &opts()).unwrap().to_string();
        assert!(text.contains("witness mapping"), "{text}");
        assert!(text.contains("rho2"), "{text}");
        assert!(text.contains("subclass transitivity"), "{text}");
    }
}
