//! Containment of conjunctive object meta-queries under `Σ_FL` — the
//! paper's primary contribution (Theorems 4, 12 and 13).
//!
//! The decision procedure follows Theorem 12 literally:
//! `q1 ⊆_ΣFL q2` iff there is a homomorphism from `body(q2)` into the
//! first `|q2| · δ` levels of `chase_ΣFL(q1)` that maps `head(q2)` onto
//! `head(chase_ΣFL(q1))`, where `δ = 2·|q1|`. Concretely:
//!
//! 1. build `chase⁻(q1)` (all rules except ρ5; always terminates; level 0);
//! 2. extend it with the level-bounded chase up to level `2·|q1|·|q2|`;
//! 3. search for the homomorphism by backtracking (`flogic-hom`).
//!
//! If the chase *fails* (ρ4 equates two distinct constants), `q1` has no
//! answers over any database satisfying `Σ_FL`, so the containment holds
//! **vacuously** — reported via [`ContainmentResult::is_vacuous`].
//!
//! Also provided:
//!
//! * [`classic_contains`] — Chandra–Merlin containment *without*
//!   constraints (the baseline the paper's examples are contrasted with);
//! * [`naive`] — an iterative-deepening semi-decision baseline that does
//!   not know the Theorem 12 bound;
//! * [`equivalent`] / [`minimize`] — equivalence and `Σ_FL`-aware query
//!   minimisation built on the containment test;
//! * [`contains_str`] — a parse-and-decide convenience for the surface
//!   syntax;
//! * [`contains_batch`] — decides one `q1` against many candidate
//!   containers, sharing a single chase of `q1`;
//! * [`DecisionCache`] — a memo table keyed by a *semantic* canonical
//!   form of the query pair (classic core + deterministic total
//!   ordering, so renamed, permuted and redundant-atom variants share
//!   one entry; [`QueryKey`] exposes the per-query half of that key to
//!   resident services, and [`canonical_query`] / [`canonical_pair`]
//!   expose the canonical representatives themselves);
//! * [`ChaseSnapshot`] — a resident, reusable chase of one `q1` so that
//!   long-lived processes (the `flqd` server) decide repeated questions
//!   about the same `q1` with the homomorphism search alone;
//! * [`decision_key_bytes`] / [`encode_decision`] / [`decode_decision`]
//!   — portable, versioned byte codecs keyed exactly like
//!   [`DecisionCache`], for the durable decision tier (the
//!   `flogic-store` crate; format in `docs/STORAGE.md`).

mod cache;
mod classic;
mod decide;
mod error;
mod explain;
pub mod naive;
mod persist;
mod rewrite;
mod snapshot;
mod union;

pub use cache::{canonical_pair, canonical_query, DecisionCache, QueryKey};
pub use classic::classic_contains;
pub use decide::{
    bound_from_sizes, contains, contains_batch, contains_with, theorem_bound, ContainmentOptions,
    ContainmentResult, Verdict,
};
pub use error::{CoreError, DecideError};
pub use persist::{decision_key_bytes, decode_decision, encode_decision, PERSIST_FORMAT_VERSION};
// Governor types, re-exported so callers can set budgets without a direct
// dependency on the chase crate.
pub use explain::{explain, DerivationStep, Explanation};
pub use flogic_chase::{Budget, CancelToken, ExhaustReason};
pub use rewrite::{equivalent, equivalent_with, minimize, minimize_with};
pub use snapshot::ChaseSnapshot;
pub use union::{contained_in_union, union_contained_in};

use flogic_model::ConjunctiveQuery;
use flogic_syntax::parse_query;

/// Parses two queries from the surface syntax and decides
/// `q1 ⊆_ΣFL q2`.
///
/// ```
/// let r = flogic_core::contains_str(
///     "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].",
///     "qq(A,B) :- T1[A*=>T2], T2[B*=>_].",
/// ).unwrap();
/// assert!(r.holds());
/// ```
pub fn contains_str(q1: &str, q2: &str) -> Result<ContainmentResult, CoreError> {
    let q1: ConjunctiveQuery = parse_query(q1).map_err(|e| CoreError::Syntax(e.to_string()))?;
    let q2: ConjunctiveQuery = parse_query(q2).map_err(|e| CoreError::Syntax(e.to_string()))?;
    contains(&q1, &q2)
}
