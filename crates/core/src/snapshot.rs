//! Reusable chase snapshots: decide many `q2`s against one resident
//! chase of `q1`.
//!
//! [`contains_batch`](crate::contains_batch) already shares one chase
//! across the candidates of a single call, but the chase dies with the
//! call. A [`ChaseSnapshot`] makes the shared chase a first-class value
//! that can outlive the request that built it — the containment server
//! (`flqd`, crate `flogic-serve`) keeps a byte-capped LRU of them so that
//! repeated questions about the same `q1` skip straight to the
//! homomorphism search.
//!
//! Soundness and completeness of reuse are the same argument as for the
//! batch API: a homomorphism into any prefix of `chase_ΣFL(q1)` witnesses
//! containment (the chase is a model of `q1` and `Σ_FL`), and Theorem 12
//! guarantees that when `q1 ⊆_ΣFL q2` holds a witness already exists
//! within the pair's own bound `2·|q1|·|q2|` — hence also within any
//! larger snapshot bound. [`ChaseSnapshot::contains`] therefore returns
//! **verdict-identical** answers to [`contains_with`] whenever the
//! snapshot [`covers`](ChaseSnapshot::covers) the pair, and falls back to
//! a fresh decision when it does not, so it is *always* safe to call.

use flogic_analysis::{direct_unsat, QueryAnalysis};
use flogic_chase::{chase_bounded, Chase, ChaseOptions, ChaseOutcome};
use flogic_hom::{find_hom_traced, Target};
use flogic_model::ConjunctiveQuery;
use flogic_term::{Metrics, Term};

use crate::decide::{
    contains_with, exhausted_result, ContainmentOptions, ContainmentResult, Verdict,
};
use crate::CoreError;

/// A resident, reusable chase of one `q1`, with its homomorphism-search
/// index and static-analysis summary precomputed.
///
/// ```
/// use flogic_core::{theorem_bound, ChaseSnapshot, ContainmentOptions};
/// use flogic_syntax::parse_query;
/// let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
/// let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
/// let opts = ContainmentOptions::default();
/// let snap = ChaseSnapshot::build(&q1, theorem_bound(&q1, &q2), &opts).unwrap();
/// // Repeated q2s now skip the chase entirely.
/// assert!(snap.contains(&q2, &opts).unwrap().holds());
/// assert!(!snap.contains(&q1, &opts).unwrap().is_exhausted());
/// ```
#[derive(Clone, Debug)]
pub struct ChaseSnapshot {
    q1: ConjunctiveQuery,
    chase: Chase,
    /// Indexed hom-search target; empty when the chase failed or was
    /// exhausted (no hom search happens in either case).
    target: Target,
    /// The level bound the chase was built to.
    bound: u32,
    /// Statically visible ρ4 clash of `q1`, precomputed for the
    /// analysis-on fast path.
    unsat: Option<(Term, Term)>,
    /// Reachability summary of `q1`, precomputed for the analysis-on
    /// early-false path.
    analysis: QueryAnalysis,
}

impl ChaseSnapshot {
    /// Builds the snapshot: one level-`bound` chase of `q1` plus the
    /// hom-search index and the static-analysis summary.
    ///
    /// `opts.level_bound` is ignored (the explicit `bound` wins);
    /// `opts.max_conjuncts`, `opts.threads`, `opts.budget` and
    /// `opts.trace` govern the build exactly as they govern
    /// [`contains_with`]. A build stopped by the budget still returns a
    /// snapshot — [`is_exhausted`](ChaseSnapshot::is_exhausted) is then
    /// true and every [`contains`](ChaseSnapshot::contains) reports the
    /// undecided verdict — so callers can decide whether to keep it
    /// (resident caches should not).
    pub fn build(
        q1: &ConjunctiveQuery,
        bound: u32,
        opts: &ContainmentOptions,
    ) -> Result<ChaseSnapshot, CoreError> {
        let chase = chase_bounded(
            q1,
            &ChaseOptions {
                level_bound: bound,
                max_conjuncts: opts.max_conjuncts,
                threads: opts.threads,
                budget: opts.budget.clone(),
                trace: opts.trace.clone(),
                sigma: opts.sigma.clone(),
            },
        )?;
        let target = if chase.is_failed() || chase.is_exhausted() {
            Target::default()
        } else {
            Target::from_chase(&chase)
        };
        Ok(ChaseSnapshot {
            q1: q1.clone(),
            target,
            bound,
            // The ρ4 shortcut only applies under Σ_FL itself.
            unsat: opts.sigma.is_sigma_fl().then(|| direct_unsat(q1)).flatten(),
            analysis: QueryAnalysis::for_rules(q1, &opts.sigma),
            chase,
        })
    }

    /// The query this snapshot chases.
    pub fn q1(&self) -> &ConjunctiveQuery {
        &self.q1
    }

    /// The level bound the chase was built to.
    pub fn level_bound(&self) -> u32 {
        self.bound
    }

    /// Number of conjuncts the chase materialized.
    pub fn chase_conjuncts(&self) -> usize {
        self.chase.len()
    }

    /// True when the build was stopped by its resource budget: the chase
    /// is a prefix and every [`contains`](ChaseSnapshot::contains) that
    /// reaches it reports [`Verdict::Exhausted`]. Resident caches should
    /// drop such snapshots (the undecidedness is a property of the build
    /// budget, not of `q1`).
    pub fn is_exhausted(&self) -> bool {
        self.chase.is_exhausted()
    }

    /// True when the chase failed (ρ4 equated two distinct constants):
    /// `q1` is unsatisfiable and contained in every query of its arity.
    pub fn is_failed(&self) -> bool {
        self.chase.is_failed()
    }

    /// Approximate resident bytes: the chase graph's own accounting (the
    /// quantity [`flogic_chase::Budget::max_bytes`] caps) plus the
    /// hom-search index. Used by byte-capped snapshot caches.
    pub fn approx_bytes(&self) -> usize {
        self.chase.approx_bytes() + self.target.approx_bytes()
    }

    /// True when this snapshot's bound suffices to decide `q1 ⊆_ΣFL q2`
    /// exactly as [`contains_with`] would under `opts`: the snapshot bound
    /// must reach the pair's effective bound
    /// (`min(opts.level_bound, theorem)`, or the Theorem 12 bound when no
    /// explicit bound is set).
    pub fn covers(&self, q2: &ConjunctiveQuery, opts: &ContainmentOptions) -> bool {
        let theorem = crate::decide::derived_bound(opts, self.q1.size(), q2.size());
        let effective = opts.level_bound.map_or(theorem, |b| b.min(theorem));
        self.bound >= effective
    }

    /// Decides `q1 ⊆_ΣFL q2` against the resident chase.
    ///
    /// Verdicts are identical to [`contains_with`] — the analysis fast
    /// paths run in the same order, the same homomorphism search runs
    /// against the same (shared, possibly deeper) chase, and exhausted
    /// builds report [`Verdict::Exhausted`] just like a budgeted fresh
    /// run. When the snapshot does not [`covers`](ChaseSnapshot::covers)
    /// the pair (its bound is too shallow), the call transparently falls
    /// back to a fresh [`contains_with`] so the answer is still exact.
    /// Reported metadata (`level_bound`, `chase_conjuncts`) describes the
    /// shared chase, exactly as [`contains_batch`](crate::contains_batch)
    /// reports its shared bound.
    pub fn contains(
        &self,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
    ) -> Result<ContainmentResult, CoreError> {
        if self.q1.arity() != q2.arity() {
            return Err(CoreError::ArityMismatch {
                q1: self.q1.arity(),
                q2: q2.arity(),
            });
        }
        if !self.covers(q2, opts) {
            return contains_with(&self.q1, q2, opts);
        }
        // Mirror `contains_with` exactly: static fast paths first (they
        // answer without consulting the chase), then the chase outcome.
        if opts.analysis {
            if let Some((left, right)) = self.unsat {
                Metrics::global().record_analysis_early_true();
                return Ok(ContainmentResult {
                    verdict: Verdict::Holds,
                    vacuous: true,
                    witness: None,
                    chase_conjuncts: 0,
                    chase_outcome: ChaseOutcome::Failed { left, right },
                    level_bound: self.bound,
                    max_chase_level: 0,
                    decided_by_analysis: true,
                });
            }
            if self.analysis.refutes_hom(q2) {
                Metrics::global().record_analysis_early_false();
                return Ok(ContainmentResult {
                    verdict: Verdict::NotHolds,
                    vacuous: false,
                    witness: None,
                    chase_conjuncts: self.chase.len(),
                    chase_outcome: self.chase.outcome(),
                    level_bound: self.bound,
                    max_chase_level: self.chase.max_level(),
                    decided_by_analysis: true,
                });
            }
            Metrics::global().record_analysis_chased();
        }
        match self.chase.outcome() {
            ChaseOutcome::Failed { .. } => {
                return Ok(ContainmentResult {
                    verdict: Verdict::Holds,
                    vacuous: true,
                    witness: None,
                    chase_conjuncts: self.chase.len(),
                    chase_outcome: self.chase.outcome(),
                    level_bound: self.bound,
                    max_chase_level: self.chase.max_level(),
                    decided_by_analysis: false,
                });
            }
            ChaseOutcome::Exhausted { reason } => {
                return Ok(exhausted_result(&self.chase, self.bound, reason));
            }
            ChaseOutcome::Completed | ChaseOutcome::LevelBounded => {}
        }
        let witness = find_hom_traced(
            q2.body(),
            q2.head(),
            &self.target,
            self.chase.head(),
            &opts.trace,
        );
        Ok(ContainmentResult {
            verdict: if witness.is_some() {
                Verdict::Holds
            } else {
                Verdict::NotHolds
            },
            vacuous: false,
            witness,
            chase_conjuncts: self.chase.len(),
            chase_outcome: self.chase.outcome(),
            level_bound: self.bound,
            max_chase_level: self.chase.max_level(),
            decided_by_analysis: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::contains;
    use crate::decide::theorem_bound;
    use flogic_chase::{Budget, ExhaustReason};
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    fn build(q1: &ConjunctiveQuery, bound: u32) -> ChaseSnapshot {
        ChaseSnapshot::build(q1, bound, &ContainmentOptions::default()).unwrap()
    }

    #[test]
    fn snapshot_agrees_with_fresh_decisions() {
        let q1 = q("q(O, D) :- member(O, C), sub(C, D).");
        let q2s = [
            q("a(O, D) :- member(O, D)."),
            q("b(O, D) :- sub(O, D)."),
            q("c(O, D) :- member(O, C), sub(C, D)."),
            q("d(O, D) :- member(O, D), sub(D, E)."),
        ];
        let bound = q2s.iter().map(|q2| theorem_bound(&q1, q2)).max().unwrap();
        let snap = build(&q1, bound);
        for q2 in &q2s {
            let fresh = contains(&q1, q2).unwrap();
            let snapped = snap.contains(q2, &ContainmentOptions::default()).unwrap();
            assert_eq!(fresh.verdict(), snapped.verdict(), "{q2}");
            assert_eq!(fresh.is_vacuous(), snapped.is_vacuous(), "{q2}");
        }
    }

    #[test]
    fn shallow_snapshot_falls_back_to_fresh_decision() {
        // Bound 0 cannot see the rho5 level the pair needs; the snapshot
        // must notice it does not cover the pair and recompute.
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let snap = build(&q1, 0);
        assert!(!snap.covers(&q2, &ContainmentOptions::default()));
        let r = snap.contains(&q2, &ContainmentOptions::default()).unwrap();
        assert!(r.holds(), "fallback must run the full-bound chase");
        // An explicit bound of 0 is covered, and decided like contains_with.
        let tight = ContainmentOptions {
            level_bound: Some(0),
            ..Default::default()
        };
        assert!(snap.covers(&q2, &tight));
        assert!(!snap.contains(&q2, &tight).unwrap().holds());
    }

    #[test]
    fn failed_chase_snapshot_is_vacuous_for_every_pair() {
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).");
        let opts = ContainmentOptions {
            analysis: false,
            ..Default::default()
        };
        let snap = ChaseSnapshot::build(&q1, 4, &opts).unwrap();
        assert!(snap.is_failed());
        let r = snap.contains(&q("qq() :- sub(X, Y)."), &opts).unwrap();
        assert!(r.holds() && r.is_vacuous());
    }

    #[test]
    fn exhausted_build_reports_exhausted_verdicts() {
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let opts = ContainmentOptions {
            max_conjuncts: 5,
            analysis: false,
            ..Default::default()
        };
        let snap = ChaseSnapshot::build(&q1, 100, &opts).unwrap();
        assert!(snap.is_exhausted());
        let r = snap.contains(&q("qq() :- data(T, A, V)."), &opts).unwrap();
        assert_eq!(r.verdict(), Verdict::Exhausted(ExhaustReason::Conjuncts));
    }

    #[test]
    fn analysis_fast_paths_win_over_exhausted_chase() {
        // A fresh budgeted run answers early-false via analysis before the
        // chase can exhaust; the snapshot path must do the same even when
        // its resident chase is a budget-stopped prefix.
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- member(X, Z).");
        let tight = ContainmentOptions {
            budget: Budget::with_timeout(std::time::Duration::ZERO),
            ..Default::default()
        };
        let fresh = contains_with(&q1, &q2, &tight).unwrap();
        let snap = ChaseSnapshot::build(&q1, theorem_bound(&q1, &q2), &tight).unwrap();
        let snapped = snap.contains(&q2, &tight).unwrap();
        assert_eq!(fresh.verdict(), snapped.verdict());
        assert_eq!(fresh.verdict(), Verdict::NotHolds);
        assert!(snapped.decided_by_analysis());
    }

    #[test]
    fn snapshot_reports_bytes_and_metadata() {
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let snap = build(&q1, 8);
        assert_eq!(snap.q1(), &q1);
        assert_eq!(snap.level_bound(), 8);
        assert!(snap.chase_conjuncts() >= 2);
        assert!(snap.approx_bytes() > 0);
        assert!(!snap.is_failed() && !snap.is_exhausted());
    }
}
