//! Containment involving unions of conjunctive queries — one of the
//! "more expressive query languages" extensions the paper's conclusion
//! proposes.
//!
//! For a union `Q = q_1 ∪ … ∪ q_n` of conjunctive queries of equal arity:
//!
//! * `q ⊆_ΣFL Q` iff **some** disjunct `q_i` has a homomorphism into
//!   `chase_ΣFL(q)` mapping `head(q_i)` onto the chase head. This is the
//!   classical Sagiv–Yannakakis criterion lifted to the constrained
//!   setting: the chase of `q` is a universal model of `q`'s canonical
//!   database under `Σ_FL` (the Theorem 4 argument), so `q`'s canonical
//!   answer is in `Q`'s answer iff one disjunct maps.
//! * `Q ⊆_ΣFL q` iff **every** disjunct is contained in `q` (union is the
//!   least upper bound).

use flogic_chase::{chase_bounded, ChaseOptions, ChaseOutcome};
use flogic_hom::{find_hom, Target};
use flogic_model::ConjunctiveQuery;

use crate::decide::{contains_with, ContainmentOptions};
use crate::CoreError;

/// Decides `q ⊆_ΣFL (q2s[0] ∪ q2s[1] ∪ …)`.
///
/// Returns the index of the witnessing disjunct (`Some(0)` by convention
/// when the containment is vacuous because `chase(q)` failed), or `None`
/// if the containment does not hold. For an *empty* union `None` is always
/// returned: `q ⊆ ∅` holds only when `q` is unsatisfiable, which callers
/// can observe with [`crate::contains`]'s vacuity flag.
pub fn contained_in_union(
    q: &ConjunctiveQuery,
    q2s: &[ConjunctiveQuery],
    opts: &ContainmentOptions,
) -> Result<Option<usize>, CoreError> {
    for q2 in q2s {
        if q.arity() != q2.arity() {
            return Err(CoreError::ArityMismatch {
                q1: q.arity(),
                q2: q2.arity(),
            });
        }
    }
    // One chase serves all disjuncts; use the largest bound needed.
    let bound = q2s
        .iter()
        .map(|q2| crate::decide::sigma_bound(opts, q.size(), q2.size()))
        .max()
        .unwrap_or(0);
    let chase = chase_bounded(
        q,
        &ChaseOptions {
            level_bound: bound,
            max_conjuncts: opts.max_conjuncts,
            threads: opts.threads,
            budget: opts.budget.clone(),
            trace: opts.trace.clone(),
            sigma: opts.sigma.clone(),
        },
    )?;
    match chase.outcome() {
        ChaseOutcome::Failed { .. } => {
            // Vacuous: q is unsatisfiable, hence contained in any non-empty
            // union; report the first disjunct by convention.
            return Ok(if q2s.is_empty() { None } else { Some(0) });
        }
        ChaseOutcome::Exhausted { reason } => {
            // "No disjunct contains q" cannot be certified from a prefix.
            return Err(CoreError::Exhausted {
                reason,
                conjuncts: chase.len(),
                levels: chase.max_level(),
            });
        }
        ChaseOutcome::Completed | ChaseOutcome::LevelBounded => {}
    }
    let target = Target::from_chase(&chase);
    for (i, q2) in q2s.iter().enumerate() {
        if find_hom(q2.body(), q2.head(), &target, chase.head()).is_some() {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

/// Decides `(q1s[0] ∪ q1s[1] ∪ …) ⊆_ΣFL q2`: every disjunct must be
/// contained. An empty union is trivially contained.
pub fn union_contained_in(
    q1s: &[ConjunctiveQuery],
    q2: &ConjunctiveQuery,
    opts: &ContainmentOptions,
) -> Result<bool, CoreError> {
    for q1 in q1s {
        // An exhausted per-disjunct check must not silently read as "not
        // contained": propagate it as an error instead.
        if !contains_with(q1, q2, opts)?.require_decided()?.holds() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }
    fn opts() -> ContainmentOptions {
        ContainmentOptions::default()
    }

    #[test]
    fn contained_in_some_disjunct() {
        let q1 = q("q(X) :- member(X, c), sub(c, d).");
        let union = [q("a(X) :- funct(X, Y)."), q("b(X) :- member(X, d).")];
        // member(X, d) holds by rho3: disjunct index 1.
        assert_eq!(contained_in_union(&q1, &union, &opts()).unwrap(), Some(1));
    }

    #[test]
    fn not_contained_in_any() {
        let q1 = q("q(X) :- member(X, c).");
        let union = [q("a(X) :- sub(X, c)."), q("b(X) :- data(X, a, V).")];
        assert_eq!(contained_in_union(&q1, &union, &opts()).unwrap(), None);
    }

    #[test]
    fn empty_union_contains_nothing() {
        let q1 = q("q(X) :- member(X, c).");
        assert_eq!(contained_in_union(&q1, &[], &opts()).unwrap(), None);
    }

    #[test]
    fn union_contained_needs_all_disjuncts() {
        let q2 = q("p(X) :- member(X, C).");
        let ok = [
            q("a(X) :- member(X, c)."),
            q("b(X) :- member(X, d), sub(d, e)."),
        ];
        assert!(union_contained_in(&ok, &q2, &opts()).unwrap());
        let bad = [q("a(X) :- member(X, c)."), q("b(X) :- sub(X, Y).")];
        assert!(!union_contained_in(&bad, &q2, &opts()).unwrap());
    }

    #[test]
    fn empty_union_is_contained_everywhere() {
        let q2 = q("p(X) :- member(X, C).");
        assert!(union_contained_in(&[], &q2, &opts()).unwrap());
    }

    #[test]
    fn union_mixed_arities_rejected() {
        let q1 = q("q(X) :- member(X, c).");
        let union = [q("a(X, Y) :- member(X, Y).")];
        assert!(contained_in_union(&q1, &union, &opts()).is_err());
    }

    #[test]
    fn vacuous_union_containment() {
        // q is unsatisfiable: contained in any non-empty union (index 0 by
        // convention), but an empty union still reports None.
        let q1 = q("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).");
        let union = [q("a() :- sub(X, Y).")];
        assert_eq!(contained_in_union(&q1, &union, &opts()).unwrap(), Some(0));
        assert_eq!(contained_in_union(&q1, &[], &opts()).unwrap(), None);
    }

    #[test]
    fn disjunct_requiring_sigma_reasoning() {
        // Neither disjunct maps classically; the second needs rho5+rho10.
        let q1 = q("q(O) :- member(O, c), mandatory(a, c).");
        let union = [q("x(O) :- sub(O, O)."), q("y(O) :- data(O, a, V).")];
        assert_eq!(contained_in_union(&q1, &union, &opts()).unwrap(), Some(1));
    }
}
