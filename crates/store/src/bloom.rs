//! Per-segment bloom filters.
//!
//! Classic double hashing (Kirsch–Mitzenmacher): two 64-bit hashes of
//! the key, probe `i` at `h1 + i·h2`. Sized at construction from the
//! key count and a bits-per-key budget (default 10, ~1% false
//! positives with 7 probes). The hash is a dependency-free FNV-1a
//! variant, keyed by two different offsets so the pair behaves as
//! independent hash functions for this purpose.
//!
//! Serialized form (embedded in the segment file, see
//! `docs/STORAGE.md`): `n_bits u64 · k u32 · word* u64` — fixed-width
//! little-endian, covered by the segment's footer CRC.

/// Bits budgeted per key (10 ⇒ ~1% false-positive rate at k = 7).
pub const BITS_PER_KEY: usize = 10;

fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix64 tail) so short keys spread too.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

fn hashes(key: &[u8]) -> (u64, u64) {
    (
        fnv64(0xCBF2_9CE4_8422_2325, key),
        fnv64(0x9747_B28C_8412_FE4D, key) | 1, // odd stride never cycles on 0
    )
}

/// An immutable bloom filter over a segment's key set.
#[derive(Clone, Debug)]
pub struct Bloom {
    n_bits: u64,
    k: u32,
    words: Vec<u64>,
}

impl Bloom {
    /// Builds a filter sized for `keys` at [`BITS_PER_KEY`].
    pub fn from_keys<'a>(keys: impl IntoIterator<Item = &'a [u8]>) -> Bloom {
        let keys: Vec<&[u8]> = keys.into_iter().collect();
        let n_bits = (keys.len().max(1) * BITS_PER_KEY).next_multiple_of(64) as u64;
        // k = ln 2 · bits/key ≈ 0.69 · 10, clamped to a sane range.
        let k = ((BITS_PER_KEY as f64 * 0.69).round() as u32).clamp(1, 30);
        let mut bloom = Bloom {
            n_bits,
            k,
            words: vec![0u64; (n_bits / 64) as usize],
        };
        for key in keys {
            let (h1, h2) = hashes(key);
            for i in 0..k as u64 {
                let bit = h1.wrapping_add(i.wrapping_mul(h2)) % bloom.n_bits;
                bloom.words[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        bloom
    }

    /// `false` means the key is definitely absent from the segment;
    /// `true` means "probably present" (the segment index decides).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hashes(key);
        (0..self.k as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits;
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Serializes to the on-disk form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.words.len() * 8);
        out.extend_from_slice(&self.n_bits.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes the on-disk form; `None` on any shape mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<Bloom> {
        if bytes.len() < 12 {
            return None;
        }
        let n_bits = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let k = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        if n_bits == 0 || n_bits % 64 != 0 || k == 0 || k > 64 {
            return None;
        }
        let body = &bytes[12..];
        if body.len() as u64 != n_bits / 8 {
            return None;
        }
        let words = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Some(Bloom { n_bits, k, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("decision-key-{i}").into_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..500).map(key).collect();
        let bloom = Bloom::from_keys(keys.iter().map(Vec::as_slice));
        for k in &keys {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..1000).map(key).collect();
        let bloom = Bloom::from_keys(keys.iter().map(Vec::as_slice));
        let fp = (1000..11_000)
            .map(key)
            .filter(|k| bloom.may_contain(k))
            .count();
        // ~1% expected at 10 bits/key; allow generous slack.
        assert!(fp < 400, "false-positive rate too high: {fp}/10000");
    }

    #[test]
    fn roundtrips_through_bytes() {
        let keys: Vec<Vec<u8>> = (0..64).map(key).collect();
        let bloom = Bloom::from_keys(keys.iter().map(Vec::as_slice));
        let back = Bloom::from_bytes(&bloom.to_bytes()).unwrap();
        for k in &keys {
            assert!(back.may_contain(k));
        }
        assert_eq!(bloom.to_bytes(), back.to_bytes());
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(Bloom::from_bytes(&[]).is_none());
        assert!(Bloom::from_bytes(&[0; 12]).is_none());
        let good = Bloom::from_keys([b"x".as_slice()]).to_bytes();
        assert!(Bloom::from_bytes(&good[..good.len() - 1]).is_none());
    }

    #[test]
    fn empty_filter_is_well_formed() {
        let bloom = Bloom::from_keys(std::iter::empty());
        assert!(!bloom.may_contain(b"anything"));
        assert!(Bloom::from_bytes(&bloom.to_bytes()).is_some());
    }
}
