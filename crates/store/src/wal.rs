//! Append-only write-ahead log with CRC-framed records and torn-tail
//! recovery.
//!
//! Layout (`wal.flqw`; full spec in `docs/STORAGE.md`):
//!
//! ```text
//! header  : magic "FLQW" (4) · format-version (1)
//! record* : frame_len u32 · frame_crc u32 · payload[frame_len]
//! payload : key_len u32 · key[key_len] · value[frame_len - 4 - key_len]
//! ```
//!
//! `frame_crc` is the CRC-32C of the payload alone, so a frame is valid
//! iff its length fits the file and its payload checksums. Replay walks
//! frames from the header and stops at the **first** invalid frame —
//! a short read, an implausible length, or a CRC mismatch — then
//! truncates the file back to the end of the valid prefix. That is the
//! whole crash story for the log: a crash mid-append tears at most the
//! final frame, every earlier frame is intact (appends are sequential),
//! and recovery drops exactly the torn tail. Records are only ever
//! appended; the log is truncated to empty after a successful memtable
//! flush, once the data is durable in a segment.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32c;
use crate::{StoreError, FORMAT_VERSION};

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 4] = b"FLQW";

/// Header length: magic + format-version byte.
const HEADER_LEN: u64 = 5;

/// Upper bound on a single frame's payload. Real records are tiny
/// (a canonical pair key + a ~30-byte decision); the cap only exists so
/// a corrupt length field is classified as a torn tail instead of
/// triggering a giant allocation.
const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// The append-only log. One per store; protected by the store's
/// memtable lock (appends and truncations always happen under it).
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Bytes in the valid prefix (header included).
    len: u64,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalReplay {
    /// The recovered records, in append order (newest last).
    pub records: Vec<(Vec<u8>, Vec<u8>)>,
    /// Bytes dropped from the tail during torn-tail recovery.
    pub torn_bytes: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying the valid record
    /// prefix and truncating any torn tail.
    ///
    /// A file with a foreign magic or format version is refused rather
    /// than rewritten — it is someone else's data (see the
    /// compatibility policy in `docs/STORAGE.md`).
    pub fn open(path: &Path) -> Result<(Wal, WalReplay), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();

        if file_len < HEADER_LEN {
            // Fresh (or torn-before-header) log: write the header anew.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&[FORMAT_VERSION])?;
            file.sync_all()?;
            let wal = Wal {
                path: path.to_path_buf(),
                file,
                len: HEADER_LEN,
            };
            return Ok((
                wal,
                WalReplay {
                    records: Vec::new(),
                    torn_bytes: file_len,
                },
            ));
        }

        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[..4] != WAL_MAGIC {
            return Err(StoreError::Corrupt {
                what: format!("{} has a foreign magic", path.display()),
            });
        }
        if header[4] != FORMAT_VERSION {
            return Err(StoreError::FormatVersion {
                found: header[4],
                expected: FORMAT_VERSION,
            });
        }

        // Replay the valid prefix.
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut valid = 0usize; // end of the last fully-valid frame
        while let Some(head) = buf.get(pos..pos + 8) {
            let frame_len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
            let frame_crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
            if !(4..=MAX_FRAME_LEN).contains(&frame_len) {
                break;
            }
            let Some(payload) = buf.get(pos + 8..pos + 8 + frame_len as usize) else {
                break;
            };
            if crc32c(payload) != frame_crc {
                break;
            }
            let klen = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
            let Some(key) = payload.get(4..4 + klen) else {
                break;
            };
            let value = &payload[4 + klen..];
            records.push((key.to_vec(), value.to_vec()));
            pos += 8 + frame_len as usize;
            valid = pos;
        }

        let keep = HEADER_LEN + valid as u64;
        let torn = file_len - keep;
        if torn > 0 {
            file.set_len(keep)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(keep))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                len: keep,
            },
            WalReplay {
                records,
                torn_bytes: torn,
            },
        ))
    }

    /// Appends one record. Not fsynced — durability for unflushed
    /// records is best-effort by design (`docs/STORAGE.md` §WAL); a
    /// crash costs at most the records since the last [`Wal::sync`] or
    /// flush, never an inconsistent file.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let frame_len = 4 + key.len() + value.len();
        if frame_len > MAX_FRAME_LEN as usize {
            return Err(StoreError::RecordTooLarge { bytes: frame_len });
        }
        let mut payload = Vec::with_capacity(frame_len);
        payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
        payload.extend_from_slice(key);
        payload.extend_from_slice(value);
        let mut frame = Vec::with_capacity(8 + frame_len);
        frame.extend_from_slice(&(frame_len as u32).to_le_bytes());
        frame.extend_from_slice(&crc32c(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Forces appended records to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Drops every record (after a successful flush made them durable in
    /// a segment): truncates back to the bare header and fsyncs.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(HEADER_LEN)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.len = HEADER_LEN;
        Ok(())
    }

    /// Current log size in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flq_wal_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.flqw")
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = tmp("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            wal.append(b"k1", b"v1").unwrap();
            wal.append(b"k2", b"").unwrap();
            wal.append(b"", b"v3").unwrap();
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(
            replay.records,
            vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), Vec::new()),
                (Vec::new(), b"v3".to_vec()),
            ]
        );
    }

    #[test]
    fn torn_tail_is_dropped_earlier_records_survive() {
        let path = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"alpha", b"1").unwrap();
            wal.append(b"beta", b"2").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: chop the final frame in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![(b"alpha".to_vec(), b"1".to_vec())]);
        assert!(replay.torn_bytes > 0);
        // Recovery truncated the torn tail, so a second open is clean.
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn corrupt_crc_fences_the_suffix() {
        let path = tmp("crc");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"good", b"1").unwrap();
            wal.append(b"bad", b"2").unwrap();
            wal.append(b"after", b"3").unwrap();
            wal.sync().unwrap();
        }
        // Flip one payload byte of the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_frame = 8 + 4 + 4 + 1; // header offset of record 2
        let idx = 5 + first_frame + 8 + 4; // into record 2's key
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        // The log has no way to resync past a bad frame; everything from
        // the corruption on is dropped, everything before survives.
        assert_eq!(replay.records, vec![(b"good".to_vec(), b"1".to_vec())]);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"k", b"v").unwrap();
        wal.reset().unwrap();
        wal.append(b"k2", b"v2").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![(b"k2".to_vec(), b"v2".to_vec())]);
    }

    #[test]
    fn foreign_magic_is_refused() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAWALFILE").unwrap();
        assert!(matches!(Wal::open(&path), Err(StoreError::Corrupt { .. })));
    }
}
