//! Sorted immutable segment files.
//!
//! A segment is one flushed memtable (or one compaction output): sorted
//! unique keys, written once, never modified, dropped as a whole when
//! compaction supersedes it. Layout (`seg-<generation>.flqs`, full spec
//! in `docs/STORAGE.md`):
//!
//! ```text
//! header : magic "FLQS" (4) · format-version (1)
//! entry* : key_len u32 · value_len u32 · key · value       (sorted)
//! index  : count u32 · (key_len u32 · key · offset u64)*   (sparse)
//! bloom  : n_bits u64 · k u32 · word* u64
//! footer : index_off u64 · index_len u64 · bloom_off u64 · bloom_len u64
//!          · entry_count u64 · data_crc u32 · meta_crc u32
//!          · magic "FLQE" (4)
//! ```
//!
//! `data_crc` checksums the whole entry region; `meta_crc` checksums the
//! index block, the bloom block, and the footer up to itself — so every
//! byte of the file is covered by exactly one of the two checksums.
//! Opening a segment reads only footer + index + bloom (and verifies
//! `meta_crc`); entry data stays on disk and is read per lookup via
//! `read_at`, so a store's resident footprint is index + bloom, not
//! data. [`Segment::verify`] streams the entry region to check
//! `data_crc` — that is what quarantines a bit-rotted file at open
//! (see `Store::open`) and what `flq cache verify` runs on demand.
//!
//! Every `index`-ed offset points at an entry start; a lookup bloom-gates,
//! binary-searches the sparse index for the greatest indexed key ≤ the
//! probe, then scans forward at most [`INDEX_EVERY`] entries.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::bloom::Bloom;
use crate::crc::Crc32c;
use crate::{StoreError, FORMAT_VERSION};

/// Segment header magic.
pub const SEGMENT_MAGIC: &[u8; 4] = b"FLQS";
/// Segment footer magic.
pub const FOOTER_MAGIC: &[u8; 4] = b"FLQE";

/// Header length: magic + format-version byte.
const HEADER_LEN: u64 = 5;
/// Fixed footer length (5 × u64 + 2 × u32 + magic).
const FOOTER_LEN: u64 = 5 * 8 + 2 * 4 + 4;
/// One sparse-index entry per this many data entries.
pub const INDEX_EVERY: usize = 16;

/// The canonical file name for a segment of generation `gen`.
pub fn segment_file_name(gen: u64) -> String {
    format!("seg-{gen:012}.flqs")
}

/// Writes a new segment from sorted, deduplicated `(key, value)` pairs.
/// The file is assembled under a `.tmp` name, fsynced, then atomically
/// renamed into place — readers can never observe a half-written
/// segment (crash recovery simply deletes leftover `.tmp` files).
pub fn write_segment<'a>(
    dir: &Path,
    gen: u64,
    entries: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
) -> Result<PathBuf, StoreError> {
    let final_path = dir.join(segment_file_name(gen));
    let tmp_path = dir.join(format!("{}.tmp", segment_file_name(gen)));
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp_path)?;

    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&[FORMAT_VERSION])?;

    let mut data_crc = Crc32c::new();
    let mut index: Vec<u8> = Vec::new();
    let mut index_count = 0u32;
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut offset = HEADER_LEN;
    let mut count = 0u64;
    let mut last_key: Option<Vec<u8>> = None;
    for (key, value) in entries {
        if let Some(prev) = &last_key {
            debug_assert!(prev.as_slice() < key, "segment input must be sorted unique");
        }
        last_key = Some(key.to_vec());
        if count as usize % INDEX_EVERY == 0 {
            index.extend_from_slice(&(key.len() as u32).to_le_bytes());
            index.extend_from_slice(key);
            index.extend_from_slice(&offset.to_le_bytes());
            index_count += 1;
        }
        let mut entry = Vec::with_capacity(8 + key.len() + value.len());
        entry.extend_from_slice(&(key.len() as u32).to_le_bytes());
        entry.extend_from_slice(&(value.len() as u32).to_le_bytes());
        entry.extend_from_slice(key);
        entry.extend_from_slice(value);
        data_crc.update(&entry);
        file.write_all(&entry)?;
        offset += entry.len() as u64;
        keys.push(key.to_vec());
        count += 1;
    }

    let index_off = offset;
    let mut meta = Vec::new();
    meta.extend_from_slice(&index_count.to_le_bytes());
    meta.extend_from_slice(&index);
    let index_len = meta.len() as u64;
    let bloom = Bloom::from_keys(keys.iter().map(Vec::as_slice)).to_bytes();
    let bloom_off = index_off + index_len;
    let bloom_len = bloom.len() as u64;
    meta.extend_from_slice(&bloom);

    let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
    footer.extend_from_slice(&index_off.to_le_bytes());
    footer.extend_from_slice(&index_len.to_le_bytes());
    footer.extend_from_slice(&bloom_off.to_le_bytes());
    footer.extend_from_slice(&bloom_len.to_le_bytes());
    footer.extend_from_slice(&count.to_le_bytes());
    footer.extend_from_slice(&data_crc.finish().to_le_bytes());
    let mut meta_crc = Crc32c::new();
    meta_crc.update(&meta);
    meta_crc.update(&footer);
    footer.extend_from_slice(&meta_crc.finish().to_le_bytes());
    footer.extend_from_slice(FOOTER_MAGIC);

    file.write_all(&meta)?;
    file.write_all(&footer)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Fsyncs a directory so a rename within it is durable.
pub fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// An open segment: resident sparse index + bloom, on-disk entry data.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    gen: u64,
    file: File,
    bloom: Bloom,
    /// Sparse index: (first key of block, entry offset), sorted.
    index: Vec<(Vec<u8>, u64)>,
    /// Offset one past the last entry (= index block offset).
    data_end: u64,
    entry_count: u64,
    data_crc: u32,
}

impl Segment {
    /// Opens the segment at `path`, reading footer, index and bloom and
    /// verifying `meta_crc` (cheap). The entry region is *not* read;
    /// call [`Segment::verify`] to stream-check `data_crc`.
    pub fn open(path: &Path, gen: u64) -> Result<Segment, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt {
            what: format!("{}: {what}", path.display()),
        };
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(corrupt("too short for header + footer"));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if &header[..4] != SEGMENT_MAGIC {
            return Err(corrupt("foreign header magic"));
        }
        if header[4] != FORMAT_VERSION {
            return Err(StoreError::FormatVersion {
                found: header[4],
                expected: FORMAT_VERSION,
            });
        }

        let mut footer = [0u8; FOOTER_LEN as usize];
        file.read_exact_at(&mut footer, file_len - FOOTER_LEN)?;
        let u64_at =
            |i: usize| u64::from_le_bytes(footer[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let index_off = u64_at(0);
        let index_len = u64_at(1);
        let bloom_off = u64_at(2);
        let bloom_len = u64_at(3);
        let entry_count = u64_at(4);
        let data_crc = u32::from_le_bytes(footer[40..44].try_into().expect("4 bytes"));
        let meta_crc = u32::from_le_bytes(footer[44..48].try_into().expect("4 bytes"));
        if &footer[48..52] != FOOTER_MAGIC {
            return Err(corrupt("foreign footer magic"));
        }
        let meta_end = bloom_off.checked_add(bloom_len);
        if index_off < HEADER_LEN
            || bloom_off != index_off + index_len
            || meta_end != Some(file_len - FOOTER_LEN)
        {
            return Err(corrupt("inconsistent footer offsets"));
        }

        let mut meta = vec![0u8; (index_len + bloom_len) as usize];
        file.read_exact_at(&mut meta, index_off)?;
        let mut check = Crc32c::new();
        check.update(&meta);
        check.update(&footer[..44]);
        if check.finish() != meta_crc {
            return Err(corrupt("meta checksum mismatch"));
        }

        // Parse the sparse index.
        let (index_bytes, bloom_bytes) = meta.split_at(index_len as usize);
        if index_bytes.len() < 4 {
            return Err(corrupt("index block too short"));
        }
        let declared = u32::from_le_bytes(index_bytes[..4].try_into().expect("4 bytes"));
        let mut index = Vec::with_capacity(declared as usize);
        let mut pos = 4usize;
        for _ in 0..declared {
            let klen = index_bytes
                .get(pos..pos + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .ok_or_else(|| corrupt("index entry truncated"))?;
            let key = index_bytes
                .get(pos + 4..pos + 4 + klen)
                .ok_or_else(|| corrupt("index key truncated"))?;
            let off = index_bytes
                .get(pos + 4 + klen..pos + 12 + klen)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| corrupt("index offset truncated"))?;
            index.push((key.to_vec(), off));
            pos = pos + 12 + klen;
        }
        if pos != index_bytes.len() {
            return Err(corrupt("trailing bytes in index block"));
        }
        let bloom =
            Bloom::from_bytes(bloom_bytes).ok_or_else(|| corrupt("malformed bloom block"))?;

        Ok(Segment {
            path: path.to_path_buf(),
            gen,
            file,
            bloom,
            index,
            data_end: index_off,
            entry_count,
            data_crc,
        })
    }

    /// The segment's generation number.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Number of entries.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks `key` up: bloom gate, sparse-index binary search, then a
    /// bounded forward scan of one block.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Greatest indexed key ≤ key; if the probe sorts before the
        // first indexed key it is absent (block firsts are entry keys).
        let block = match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => i,
            Err(0) => return Ok(None),
            Err(i) => i - 1,
        };
        let mut offset = self.index[block].1;
        for _ in 0..INDEX_EVERY {
            if offset >= self.data_end {
                break;
            }
            let mut lens = [0u8; 8];
            self.file.read_exact_at(&mut lens, offset)?;
            let klen = u32::from_le_bytes(lens[..4].try_into().expect("4 bytes")) as u64;
            let vlen = u32::from_le_bytes(lens[4..].try_into().expect("4 bytes")) as u64;
            if offset + 8 + klen + vlen > self.data_end {
                return Err(StoreError::Corrupt {
                    what: format!("{}: entry overruns data region", self.path.display()),
                });
            }
            let mut entry_key = vec![0u8; klen as usize];
            self.file.read_exact_at(&mut entry_key, offset + 8)?;
            match entry_key.as_slice().cmp(key) {
                std::cmp::Ordering::Less => offset += 8 + klen + vlen,
                std::cmp::Ordering::Equal => {
                    let mut value = vec![0u8; vlen as usize];
                    self.file.read_exact_at(&mut value, offset + 8 + klen)?;
                    return Ok(Some(value));
                }
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Streams every entry in key order (compaction input).
    pub fn scan(&self) -> Result<crate::KvPairs, StoreError> {
        let mut out = Vec::with_capacity(self.entry_count as usize);
        let mut data = vec![0u8; (self.data_end - HEADER_LEN) as usize];
        self.file.read_exact_at(&mut data, HEADER_LEN)?;
        let mut pos = 0usize;
        while pos < data.len() {
            let overrun = || StoreError::Corrupt {
                what: format!("{}: entry overruns data region", self.path.display()),
            };
            let head = data.get(pos..pos + 8).ok_or_else(overrun)?;
            let klen = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
            let vlen = u32::from_le_bytes(head[4..].try_into().expect("4 bytes")) as usize;
            let key = data.get(pos + 8..pos + 8 + klen).ok_or_else(overrun)?;
            let value = data
                .get(pos + 8 + klen..pos + 8 + klen + vlen)
                .ok_or_else(overrun)?;
            out.push((key.to_vec(), value.to_vec()));
            pos += 8 + klen + vlen;
        }
        Ok(out)
    }

    /// Stream-checks `data_crc` over the whole entry region.
    pub fn verify(&self) -> Result<(), StoreError> {
        let mut crc = Crc32c::new();
        let mut offset = HEADER_LEN;
        let mut buf = vec![0u8; 64 * 1024];
        while offset < self.data_end {
            let n = (self.data_end - offset).min(buf.len() as u64) as usize;
            self.file.read_exact_at(&mut buf[..n], offset)?;
            crc.update(&buf[..n]);
            offset += n as u64;
        }
        if crc.finish() != self.data_crc {
            return Err(StoreError::Corrupt {
                what: format!("{}: data checksum mismatch", self.path.display()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flq_segment_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entries(n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key-{i:06}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect()
    }

    fn write(dir: &Path, gen: u64, pairs: &[(Vec<u8>, Vec<u8>)]) -> PathBuf {
        write_segment(
            dir,
            gen,
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap()
    }

    #[test]
    fn every_key_is_found_and_absent_keys_are_not() {
        let dir = tmp("lookup");
        let pairs = entries(100);
        let path = write(&dir, 1, &pairs);
        let seg = Segment::open(&path, 1).unwrap();
        assert_eq!(seg.entry_count(), 100);
        for (k, v) in &pairs {
            assert_eq!(seg.get(k).unwrap().as_deref(), Some(v.as_slice()), "{k:?}");
        }
        assert!(seg.get(b"key-999999").unwrap().is_none());
        assert!(seg.get(b"aaa").unwrap().is_none(), "before first key");
        assert!(seg.get(b"zzz").unwrap().is_none(), "after last key");
        seg.verify().unwrap();
    }

    #[test]
    fn scan_returns_all_entries_in_order() {
        let dir = tmp("scan");
        let pairs = entries(50);
        let path = write(&dir, 2, &pairs);
        let seg = Segment::open(&path, 2).unwrap();
        assert_eq!(seg.scan().unwrap(), pairs);
    }

    #[test]
    fn empty_segment_is_valid() {
        let dir = tmp("empty");
        let path = write(&dir, 3, &[]);
        let seg = Segment::open(&path, 3).unwrap();
        assert_eq!(seg.entry_count(), 0);
        assert!(seg.get(b"anything").unwrap().is_none());
        seg.verify().unwrap();
    }

    #[test]
    fn data_corruption_is_caught_by_verify() {
        let dir = tmp("corrupt_data");
        let pairs = entries(64);
        let path = write(&dir, 4, &pairs);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 10] ^= 0xFF; // flip a data byte
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path, 4).unwrap(); // meta still intact
        assert!(matches!(seg.verify(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn meta_corruption_is_caught_at_open() {
        let dir = tmp("corrupt_meta");
        let pairs = entries(64);
        let path = write(&dir, 5, &pairs);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - FOOTER_LEN as usize - 3] ^= 0xFF; // flip a bloom byte
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Segment::open(&path, 5),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = tmp("truncated");
        let path = write(&dir, 6, &entries(10));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(Segment::open(&path, 6).is_err());
    }
}
