//! The store proper: WAL + memtable + segments + manifest + compaction,
//! assembled behind a small `open`/`get`/`put`/`flush` surface.
//!
//! One deliberate simplification keeps the concurrency story short: the
//! store is a **cache of deterministic computations** — for any key,
//! every value ever written under it is byte-identical (a containment
//! decision is a pure function of its key; the codec in `flogic-core`
//! guarantees it). Duplicate keys across tiers are therefore harmless,
//! which is why a compaction can run concurrently with flushes without
//! any epoch dance: the merged output may coexist with a racing flush
//! that re-wrote one of its keys, and both copies are equal.
//!
//! Crash-safety invariants (tested in `tests/` and specified in
//! `docs/STORAGE.md`):
//!
//! * every mutation of the segment set goes through a fenced manifest
//!   install (tmp + fsync + rename + dir fsync);
//! * a segment file is fsynced *before* the manifest that lists it;
//! * the WAL is reset only *after* the flushed segment's manifest is
//!   durable;
//! * files the manifest does not list are never opened — they are
//!   quarantined (leftover `.tmp` files are deleted; everything else is
//!   renamed `*.quarantined`, never removed).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::thread::JoinHandle;

use crate::manifest::{self, Manifest, SegmentEntry, MANIFEST_NAME};
use crate::memtable::Memtable;
use crate::segment::{segment_file_name, write_segment, Segment};
use crate::wal::Wal;
use crate::StoreError;

/// Tunables for [`Store::open`].
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Flush the memtable to a segment once it holds about this many
    /// bytes.
    pub flush_bytes: usize,
    /// Ask the background compactor to merge once more than this many
    /// segments are live. `0` disables automatic compaction.
    pub compact_segments: usize,
    /// Fsync the WAL on every [`Store::put`]. Off by default: an
    /// unflushed decision lost to a crash is recomputed, never wrong,
    /// so the store trades the last few records for put latency.
    pub sync_writes: bool,
    /// Stream-verify every segment's data checksum at open (reads the
    /// whole store). Off by default — open always verifies the cheap
    /// metadata checksums; [`Store::verify`] covers data on demand.
    pub verify_data_on_open: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            flush_bytes: 4 * 1024 * 1024,
            compact_segments: 6,
            sync_writes: false,
            verify_data_on_open: false,
        }
    }
}

/// Monotonic event counters (since open).
#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    quarantined: AtomicU64,
}

/// A point-in-time view of the store, for `flq cache stat` and the
/// `flqd_store_*` metric families.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Lookups served (any tier).
    pub gets: u64,
    /// Lookups that found the key.
    pub hits: u64,
    /// Records written.
    pub puts: u64,
    /// Memtable flushes since open.
    pub flushes: u64,
    /// Compactions since open.
    pub compactions: u64,
    /// Files quarantined since open.
    pub quarantined: u64,
    /// Live segment files.
    pub segments: u64,
    /// Entries across live segments (pre-dedup).
    pub segment_entries: u64,
    /// Entries buffered in the memtable.
    pub memtable_entries: u64,
    /// Approximate memtable bytes.
    pub memtable_bytes: u64,
    /// WAL file size in bytes.
    pub wal_bytes: u64,
    /// Current manifest generation.
    pub generation: u64,
    /// WAL records replayed by the last open.
    pub wal_replayed: u64,
    /// Torn WAL bytes dropped by the last open.
    pub wal_torn_bytes: u64,
}

/// What [`Store::verify`] found.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Segments whose data region checksummed clean.
    pub segments_ok: u64,
    /// Total entries across verified segments.
    pub entries: u64,
    /// Human-readable descriptions of everything wrong.
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// True when nothing is wrong.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Memtable + WAL, mutated together under one lock.
#[derive(Debug)]
struct MemState {
    mem: Memtable,
    wal: Wal,
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    opts: StoreOptions,
    mem: Mutex<MemState>,
    /// Live segments, newest generation first.
    segs: RwLock<Vec<Arc<Segment>>>,
    meta: Mutex<Manifest>,
    /// Serializes compactions (background vs. [`Store::compact_now`]):
    /// two concurrent merges would each install their own output and
    /// leave both live — harmless for correctness (deterministic
    /// values) but wasteful and surprising.
    compacting: Mutex<()>,
    counters: Counters,
    wal_replayed: AtomicU64,
    wal_torn_bytes: AtomicU64,
}

enum CompactMsg {
    Compact,
    Shutdown,
}

/// A durable key→value store (see the crate docs and `docs/STORAGE.md`).
#[derive(Debug)]
pub struct Store {
    inner: Arc<Inner>,
    compactor: Mutex<Option<(mpsc::Sender<CompactMsg>, JoinHandle<()>)>>,
}

impl Store {
    /// Opens (or creates) the store under `dir`: loads and fences the
    /// manifest, quarantines fenced/orphaned/corrupt segment files,
    /// deletes leftover `.tmp` files, opens the live segments, and
    /// replays the WAL into a fresh memtable (dropping any torn tail).
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut quarantined = 0u64;

        // 1. Manifest: load, fence duplicate generations.
        let fenced = manifest::load(dir)?.fence();
        let mut man = fenced.manifest;
        for entry in &fenced.fenced {
            if dir.join(&entry.name).exists() {
                manifest::quarantine(dir, &entry.name)?;
                quarantined += 1;
            }
        }

        // 2. Sweep the dir: drop tmp leftovers, quarantine orphans.
        let listed: Vec<String> = man.segments.iter().map(|s| s.name.clone()).collect();
        for dirent in std::fs::read_dir(dir)? {
            let name = dirent?.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                std::fs::remove_file(dir.join(name))?;
            } else if name.starts_with("seg-")
                && name.ends_with(".flqs")
                && !listed.iter().any(|l| l == name)
            {
                manifest::quarantine(dir, name)?;
                quarantined += 1;
            }
        }

        // 3. Open the live segments; quarantine anything that fails its
        // metadata checks (or, when asked, its data checksum).
        let mut segs: Vec<Arc<Segment>> = Vec::with_capacity(man.segments.len());
        let mut dropped: Vec<String> = Vec::new();
        for entry in &man.segments {
            let path = dir.join(&entry.name);
            let opened = Segment::open(&path, entry.gen).and_then(|seg| {
                if opts.verify_data_on_open {
                    seg.verify()?;
                }
                Ok(seg)
            });
            match opened {
                Ok(seg) => segs.push(Arc::new(seg)),
                Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    dropped.push(entry.name.clone());
                }
                Err(_) => {
                    manifest::quarantine(dir, &entry.name)?;
                    quarantined += 1;
                    dropped.push(entry.name.clone());
                }
            }
        }
        if !dropped.is_empty() {
            man.segments.retain(|s| !dropped.contains(&s.name));
            manifest::store(dir, &man)?;
        }
        segs.sort_by_key(|s| std::cmp::Reverse(s.generation()));

        // 4. WAL: replay the valid prefix into the memtable.
        let (wal, replay) = Wal::open(&dir.join("wal.flqw"))?;
        let mut mem = Memtable::new();
        let replayed = replay.records.len() as u64;
        for (k, v) in replay.records {
            mem.insert(k, v);
        }

        let inner = Arc::new(Inner {
            dir: dir.to_path_buf(),
            opts,
            mem: Mutex::new(MemState { mem, wal }),
            segs: RwLock::new(segs),
            meta: Mutex::new(man),
            compacting: Mutex::new(()),
            counters: Counters::default(),
            wal_replayed: AtomicU64::new(replayed),
            wal_torn_bytes: AtomicU64::new(replay.torn_bytes),
        });
        inner
            .counters
            .quarantined
            .store(quarantined, Ordering::Relaxed);

        // 5. Background compactor.
        let (tx, rx) = mpsc::channel();
        let weak: Weak<Inner> = Arc::downgrade(&inner);
        let handle = std::thread::Builder::new()
            .name("flq-store-compact".into())
            .spawn(move || {
                while let Ok(CompactMsg::Compact) = rx.recv() {
                    let Some(inner) = weak.upgrade() else { break };
                    // Failures are not fatal to the serving path: the
                    // pre-compaction segments stay live and correct.
                    let _ = Inner::compact(&inner);
                }
            })
            .expect("spawn compactor thread");

        Ok(Store {
            inner,
            compactor: Mutex::new(Some((tx, handle))),
        })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Looks up `key`: memtable first, then segments newest-first
    /// (bloom-gated).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.counters.gets.fetch_add(1, Ordering::Relaxed);
        {
            let state = self.inner.mem.lock().expect("store mem lock");
            if let Some(v) = state.mem.get(key) {
                self.inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(v.to_vec()));
            }
        }
        let segs = self.inner.segs.read().expect("store segs lock");
        for seg in segs.iter() {
            if let Some(v) = seg.get(key)? {
                self.inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Writes one record: WAL append, memtable insert, and — once the
    /// memtable passes the flush threshold — a segment flush.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.inner.counters.puts.fetch_add(1, Ordering::Relaxed);
        let mut state = self.inner.mem.lock().expect("store mem lock");
        state.wal.append(key, value)?;
        if self.inner.opts.sync_writes {
            state.wal.sync()?;
        }
        state.mem.insert(key.to_vec(), value.to_vec());
        if state.mem.approx_bytes() >= self.inner.opts.flush_bytes {
            self.flush_locked(&mut state)?;
            drop(state);
            self.maybe_request_compaction();
        }
        Ok(())
    }

    /// Flushes the memtable to a new segment (no-op when empty).
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut state = self.inner.mem.lock().expect("store mem lock");
        if state.mem.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut state)?;
        drop(state);
        self.maybe_request_compaction();
        Ok(())
    }

    fn flush_locked(&self, state: &mut MemState) -> Result<(), StoreError> {
        let inner = &self.inner;
        // Durability order: segment file → manifest → WAL reset. A crash
        // between any two steps leaves either (a) an orphan segment the
        // next open quarantines while the WAL still replays, or (b) a
        // listed segment plus a WAL whose records duplicate it — and
        // duplicates are harmless (deterministic values).
        let mut meta = inner.meta.lock().expect("store meta lock");
        let gen = meta.generation + 1;
        write_segment(&inner.dir, gen, state.mem.iter())?;
        let opened = Segment::open(&inner.dir.join(segment_file_name(gen)), gen)?;
        meta.generation = gen;
        meta.segments.push(SegmentEntry {
            name: segment_file_name(gen),
            gen,
            entries: state.mem.len() as u64,
        });
        manifest::store(&inner.dir, &meta)?;
        drop(meta);
        inner
            .segs
            .write()
            .expect("store segs lock")
            .insert(0, Arc::new(opened));
        state.wal.reset()?;
        state.mem.clear();
        inner.counters.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn maybe_request_compaction(&self) {
        let threshold = self.inner.opts.compact_segments;
        if threshold == 0 {
            return;
        }
        let live = self.inner.segs.read().expect("store segs lock").len();
        if live > threshold {
            if let Some((tx, _)) = self.compactor.lock().expect("compactor lock").as_ref() {
                let _ = tx.send(CompactMsg::Compact);
            }
        }
    }

    /// Merges every live segment into one, synchronously.
    pub fn compact_now(&self) -> Result<(), StoreError> {
        Inner::compact(&self.inner)
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> StoreStats {
        let (memtable_entries, memtable_bytes, wal_bytes) = {
            let state = self.inner.mem.lock().expect("store mem lock");
            (
                state.mem.len() as u64,
                state.mem.approx_bytes() as u64,
                state.wal.len_bytes(),
            )
        };
        let (segments, segment_entries) = {
            let segs = self.inner.segs.read().expect("store segs lock");
            (
                segs.len() as u64,
                segs.iter().map(|s| s.entry_count()).sum(),
            )
        };
        let c = &self.inner.counters;
        StoreStats {
            gets: c.gets.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            flushes: c.flushes.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            segments,
            segment_entries,
            memtable_entries,
            memtable_bytes,
            wal_bytes,
            generation: self.inner.meta.lock().expect("store meta lock").generation,
            wal_replayed: self.inner.wal_replayed.load(Ordering::Relaxed),
            wal_torn_bytes: self.inner.wal_torn_bytes.load(Ordering::Relaxed),
        }
    }

    /// Per-segment `(name, generation, entries)` rows, newest first.
    pub fn segment_rows(&self) -> Vec<(String, u64, u64)> {
        self.inner
            .segs
            .read()
            .expect("store segs lock")
            .iter()
            .map(|s| {
                (
                    s.path()
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                    s.generation(),
                    s.entry_count(),
                )
            })
            .collect()
    }

    /// Up to `limit` records in key order, newest tier winning —
    /// `flq cache inspect`'s data source.
    pub fn sample(&self, limit: usize) -> Result<crate::KvPairs, StoreError> {
        let mut merged = std::collections::BTreeMap::new();
        let segs = self.inner.segs.read().expect("store segs lock").clone();
        for seg in segs.iter().rev() {
            for (k, v) in seg.scan()? {
                merged.insert(k, v);
            }
        }
        let state = self.inner.mem.lock().expect("store mem lock");
        for (k, v) in state.mem.iter() {
            merged.insert(k.to_vec(), v.to_vec());
        }
        drop(state);
        Ok(merged.into_iter().take(limit).collect())
    }

    /// Full integrity pass: every live segment's data checksum, plus a
    /// manifest/ directory consistency sweep. Never mutates the store.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        let segs = self.inner.segs.read().expect("store segs lock").clone();
        for seg in segs.iter() {
            match seg.verify() {
                Ok(()) => {
                    report.segments_ok += 1;
                    report.entries += seg.entry_count();
                }
                Err(e) => report.problems.push(e.to_string()),
            }
        }
        let meta = self.inner.meta.lock().expect("store meta lock").clone();
        for entry in &meta.segments {
            if !self.inner.dir.join(&entry.name).exists() {
                report
                    .problems
                    .push(format!("{}: listed in MANIFEST but missing", entry.name));
            }
        }
        if !self.inner.dir.join(MANIFEST_NAME).exists() && !meta.segments.is_empty() {
            report.problems.push("MANIFEST missing".to_string());
        }
        Ok(report)
    }
}

impl Inner {
    /// Merge every live segment into one new segment. Safe to run
    /// concurrently with puts and flushes (see the module docs on
    /// deterministic values); `meta` is only held for the install.
    fn compact(inner: &Arc<Inner>) -> Result<(), StoreError> {
        let _one_at_a_time = inner.compacting.lock().expect("store compact lock");
        let input: Vec<Arc<Segment>> = inner.segs.read().expect("store segs lock").clone();
        if input.len() < 2 {
            return Ok(());
        }
        // Oldest first, so newer generations overwrite on key collision.
        let mut merged = std::collections::BTreeMap::new();
        for seg in input.iter().rev() {
            for (k, v) in seg.scan()? {
                merged.insert(k, v);
            }
        }
        let input_names: Vec<String> = input
            .iter()
            .map(|s| segment_file_name(s.generation()))
            .collect();

        let mut meta = inner.meta.lock().expect("store meta lock");
        let gen = meta.generation + 1;
        write_segment(
            &inner.dir,
            gen,
            merged.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )?;
        let opened = Segment::open(&inner.dir.join(segment_file_name(gen)), gen)?;
        meta.generation = gen;
        meta.segments.retain(|s| !input_names.contains(&s.name));
        meta.segments.push(SegmentEntry {
            name: segment_file_name(gen),
            gen,
            entries: merged.len() as u64,
        });
        manifest::store(&inner.dir, &meta)?;
        drop(meta);

        {
            let mut segs = inner.segs.write().expect("store segs lock");
            segs.retain(|s| !input.iter().any(|i| Arc::ptr_eq(s, i)));
            segs.push(Arc::new(opened));
            segs.sort_by_key(|s| std::cmp::Reverse(s.generation()));
        }
        // The manifest no longer lists the inputs; their files can go.
        // Readers holding an Arc keep a valid fd until they drop it.
        for name in &input_names {
            let _ = std::fs::remove_file(inner.dir.join(name));
        }
        inner.counters.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some((tx, handle)) = self.compactor.lock().expect("compactor lock").take() {
            let _ = tx.send(CompactMsg::Shutdown);
            drop(tx);
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flq_store_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            flush_bytes: 1024,
            compact_segments: 3,
            ..Default::default()
        }
    }

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i:05}").into_bytes(),
            format!("value-{i}").into_bytes(),
        )
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp("reopen");
        {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            for i in 0..50 {
                let (k, v) = kv(i);
                store.put(&k, &v).unwrap();
            }
            store.flush().unwrap();
            // And some unflushed records that must come back via the WAL.
            for i in 50..60 {
                let (k, v) = kv(i);
                store.put(&k, &v).unwrap();
            }
        }
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..60 {
            let (k, v) = kv(i);
            assert_eq!(store.get(&k).unwrap(), Some(v), "key {i}");
        }
        assert!(store.get(b"absent").unwrap().is_none());
        let stats = store.stats();
        assert_eq!(stats.wal_replayed, 10);
        assert_eq!(stats.segments, 1);
    }

    #[test]
    fn automatic_flush_and_compaction_preserve_every_record() {
        let dir = tmp("autoflush");
        let store = Store::open(&dir, small_opts()).unwrap();
        for i in 0..500 {
            let (k, v) = kv(i);
            store.put(&k, &v).unwrap();
        }
        store.flush().unwrap();
        store.compact_now().unwrap();
        let stats = store.stats();
        assert!(stats.flushes >= 2, "tiny threshold must have flushed");
        assert_eq!(stats.segments, 1, "compaction merged to one segment");
        assert_eq!(stats.segment_entries, 500);
        for i in 0..500 {
            let (k, v) = kv(i);
            assert_eq!(store.get(&k).unwrap(), Some(v), "key {i}");
        }
        assert!(store.verify().unwrap().is_clean());
    }

    #[test]
    fn overwrites_resolve_to_newest_across_tiers() {
        let dir = tmp("overwrite");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.put(b"k", b"old").unwrap();
        store.flush().unwrap();
        store.put(b"k", b"new").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(b"new".as_ref()));
        store.flush().unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(b"new".as_ref()));
        store.compact_now().unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(b"new".as_ref()));
    }

    #[test]
    fn orphan_segments_are_quarantined_at_open() {
        let dir = tmp("orphan");
        {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.put(b"k", b"v").unwrap();
            store.flush().unwrap();
        }
        // Drop a fake segment file the manifest does not list.
        std::fs::write(dir.join("seg-000000000099.flqs"), b"garbage").unwrap();
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.stats().quarantined, 1);
        assert!(!dir.join("seg-000000000099.flqs").exists());
        assert!(dir.join("seg-000000000099.flqs.quarantined").exists());
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(b"v".as_ref()));
    }

    #[test]
    fn corrupt_listed_segment_is_quarantined_and_dropped() {
        let dir = tmp("corrupt_listed");
        {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.put(b"k", b"v").unwrap();
            store.flush().unwrap();
        }
        let name = segment_file_name(1);
        let mut bytes = std::fs::read(dir.join(&name)).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // corrupt the footer/meta region
        std::fs::write(dir.join(&name), &bytes).unwrap();
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.stats().segments, 0);
        assert!(store.get(b"k").unwrap().is_none(), "data gone, not wrong");
        assert!(store.verify().unwrap().is_clean(), "store is consistent");
        // And the store still accepts writes afterwards.
        store.put(b"k2", b"v2").unwrap();
        store.flush().unwrap();
        assert_eq!(store.get(b"k2").unwrap().as_deref(), Some(b"v2".as_ref()));
    }

    #[test]
    fn sample_and_segment_rows_reflect_contents() {
        let dir = tmp("sample");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..10 {
            let (k, v) = kv(i);
            store.put(&k, &v).unwrap();
        }
        store.flush().unwrap();
        store.put(b"zz-memtable-only", b"m").unwrap();
        let rows = store.segment_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].2, 10);
        let sample = store.sample(100).unwrap();
        assert_eq!(sample.len(), 11);
        assert_eq!(sample[0].0, kv(0).0);
        assert_eq!(sample.last().unwrap().0, b"zz-memtable-only");
    }
}
