//! The in-memory write buffer: a sorted map mirroring the WAL.
//!
//! Every [`crate::Store::put`] lands here (after its WAL append); reads
//! consult the memtable before any segment, so the newest write always
//! wins. When the approximate footprint passes the flush threshold the
//! whole table is written out as one sorted immutable segment and the
//! WAL is reset — `BTreeMap` keeps the keys sorted, so the flush is a
//! single in-order walk.

use std::collections::BTreeMap;

/// Sorted in-memory key→value buffer with an approximate byte count.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    bytes: usize,
}

/// Fixed per-entry overhead charged on top of key/value bytes, so many
/// tiny entries still trip the flush threshold.
const ENTRY_OVERHEAD: usize = 64;

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Inserts (or overwrites) one entry.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let (klen, vlen) = (key.len(), value.len());
        match self.map.insert(key, value) {
            Some(old) => self.bytes = self.bytes - old.len() + vlen,
            None => self.bytes += klen + vlen + ENTRY_OVERHEAD,
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Sorted iteration over the entries (flush order).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Empties the table (after a successful flush).
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_write_wins_and_iteration_is_sorted() {
        let mut m = Memtable::new();
        m.insert(b"b".to_vec(), b"1".to_vec());
        m.insert(b"a".to_vec(), b"2".to_vec());
        m.insert(b"b".to_vec(), b"3".to_vec());
        assert_eq!(m.get(b"b"), Some(b"3".as_slice()));
        assert_eq!(m.len(), 2);
        let keys: Vec<&[u8]> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b".as_slice()]);
    }

    #[test]
    fn byte_accounting_tracks_inserts_and_overwrites() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.insert(b"key".to_vec(), vec![0u8; 100]);
        let one = m.approx_bytes();
        assert!(one >= 103);
        m.insert(b"key".to_vec(), vec![0u8; 10]);
        assert!(
            m.approx_bytes() < one,
            "overwrite with smaller value shrinks"
        );
        m.clear();
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }
}
