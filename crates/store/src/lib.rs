//! A dependency-free LSM store for durable containment decisions.
//!
//! `flqd`'s warm caches (the semantic [`DecisionCache`] and the
//! byte-capped chase-snapshot LRU) are process-resident: every restart
//! is a full cold start, and capacity is bounded by RAM. This crate
//! adds the missing tier — a small log-structured merge store with the
//! classic shape:
//!
//! * an append-only **WAL** with CRC-framed records and torn-tail
//!   recovery ([`wal`]);
//! * an in-memory **memtable** ([`memtable`]) that flushes to sorted
//!   immutable **segment files** with per-segment bloom filters
//!   ([`segment`], [`bloom`]);
//! * a fenced **manifest** — atomic rename + strictly increasing
//!   generation numbers — as the single source of truth for the live
//!   segment set ([`manifest`]);
//! * **background compaction** on a dedicated thread ([`Store`]);
//! * [`DurableDecisionCache`], which layers the store *under* the
//!   in-RAM [`DecisionCache`] through its `contains_with_compute` seam,
//!   keyed by the portable byte keys of
//!   [`flogic_core::decision_key_bytes`] so entries stay valid across
//!   restarts and differently-populated interners.
//!
//! "Dependency-free" means no external crates: the CRC, bloom filter
//! and file formats are all vendored here, same policy as the rest of
//! the workspace. The authoritative on-disk format specification —
//! record framings, checksums, the manifest/generation protocol,
//! compaction invariants and the crash-recovery state machine — lives
//! in `docs/STORAGE.md`; this crate is its implementation.
//!
//! ```
//! use flogic_store::DurableDecisionCache;
//! use flogic_syntax::parse_query;
//! let dir = std::env::temp_dir().join(format!("flq_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let q1 = parse_query("q(X, Z) :- sub(X, Y), sub(Y, Z).").unwrap();
//! let q2 = parse_query("p(X, Z) :- sub(X, Z).").unwrap();
//! {
//!     let cache = DurableDecisionCache::open(&dir).unwrap();
//!     assert!(cache.contains(&q1, &q2).unwrap().holds());
//!     cache.flush().unwrap();
//! }
//! // A new process (here: a new cache) starts RAM-cold but disk-warm.
//! let cache = DurableDecisionCache::open(&dir).unwrap();
//! assert!(cache.contains(&q1, &q2).unwrap().holds());
//! assert_eq!(cache.durable_stats().disk_hits, 1);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! [`DecisionCache`]: flogic_core::DecisionCache

use std::fmt;

pub mod bloom;
pub mod crc;
mod durable;
pub mod manifest;
pub mod memtable;
pub mod segment;
mod store;
pub mod wal;

pub use durable::{DurableDecisionCache, DurableStats};
pub use store::{Store, StoreOptions, StoreStats, VerifyReport};

/// Owned key/value byte pairs in key order, as returned by segment
/// scans and [`Store::sample`].
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// The on-disk format version, stamped into every WAL, segment and
/// manifest header. Bump on any layout change; files with a different
/// version are refused (see the compatibility policy in
/// `docs/STORAGE.md`).
pub const FORMAT_VERSION: u8 = 1;

/// Everything that can go wrong in the store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// A file failed its structural or checksum validation.
    Corrupt {
        /// What was wrong, with the offending path.
        what: String,
    },
    /// A file carries an on-disk format version this build cannot read.
    FormatVersion {
        /// The version byte found in the file.
        found: u8,
        /// The version this build writes and reads.
        expected: u8,
    },
    /// A record exceeded the maximum frame size.
    RecordTooLarge {
        /// The offending record's encoded size.
        bytes: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt { what } => write!(f, "corrupt store file: {what}"),
            StoreError::FormatVersion { found, expected } => write!(
                f,
                "unsupported on-disk format version {found} (this build reads {expected})"
            ),
            StoreError::RecordTooLarge { bytes } => {
                write!(f, "record of {bytes} bytes exceeds the frame cap")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
