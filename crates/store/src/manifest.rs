//! The manifest: the store's single source of truth for which segments
//! are live, fenced by generation numbers and an atomic rename.
//!
//! Layout (`MANIFEST`; full spec in `docs/STORAGE.md`):
//!
//! ```text
//! magic "FLQM" (4) · format-version (1) · generation u64 · count u32
//! · (name_len u32 · name · gen u64 · entries u64)*
//! · crc u32      — CRC-32C of everything before it
//! ```
//!
//! Writes go to `MANIFEST.tmp`, fsync, then `rename(2)` over `MANIFEST`
//! and a directory fsync — readers observe either the old or the new
//! manifest, never a mix, and a crash leaves at worst a stale `.tmp`
//! that the next open deletes.
//!
//! **Generation fencing.** Every mutation of the segment set (flush,
//! compaction) writes a manifest whose `generation` strictly exceeds
//! the previous one, and every segment is stamped with the generation
//! that created it. On load the entries are fenced: if two entries
//! claim the same generation (the signature of a crashed writer racing
//! a rename, or a restored backup mixing epochs), the **last-listed**
//! entry wins — manifest order is append order, so last-listed is the
//! newest write — and the losers are reported for quarantine. Segment
//! files on disk that the manifest does not list are likewise orphans:
//! never opened, quarantined by `Store::open`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32c;
use crate::segment::sync_dir;
use crate::{StoreError, FORMAT_VERSION};

/// Manifest file magic.
pub const MANIFEST_MAGIC: &[u8; 4] = b"FLQM";

/// Manifest file name within a data dir.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// One live segment, as recorded in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name relative to the data dir (e.g. `seg-000000000003.flqs`).
    pub name: String,
    /// Generation that created the segment.
    pub gen: u64,
    /// Number of entries, for stats without opening the file.
    pub entries: u64,
}

/// The decoded manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The store's current generation (strictly increases per mutation).
    pub generation: u64,
    /// Live segments, oldest first.
    pub segments: Vec<SegmentEntry>,
}

/// Result of loading + fencing a manifest.
#[derive(Debug)]
pub struct FencedManifest {
    /// The fenced manifest (duplicate generations resolved).
    pub manifest: Manifest,
    /// Entries fenced off because a newer entry claimed their
    /// generation; their files should be quarantined.
    pub fenced: Vec<SegmentEntry>,
}

impl Manifest {
    /// Serializes to the on-disk form.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&(seg.name.len() as u32).to_le_bytes());
            out.extend_from_slice(seg.name.as_bytes());
            out.extend_from_slice(&seg.gen.to_le_bytes());
            out.extend_from_slice(&seg.entries.to_le_bytes());
        }
        let crc = crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses the on-disk form, checking magic, version and CRC.
    fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt {
            what: format!("MANIFEST: {what}"),
        };
        if bytes.len() < 4 + 1 + 8 + 4 + 4 {
            return Err(corrupt("too short"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32c(body) != crc {
            return Err(corrupt("checksum mismatch"));
        }
        if &body[..4] != MANIFEST_MAGIC {
            return Err(corrupt("foreign magic"));
        }
        if body[4] != FORMAT_VERSION {
            return Err(StoreError::FormatVersion {
                found: body[4],
                expected: FORMAT_VERSION,
            });
        }
        let generation = u64::from_le_bytes(body[5..13].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(body[13..17].try_into().expect("4 bytes"));
        let mut segments = Vec::with_capacity(count as usize);
        let mut pos = 17usize;
        for _ in 0..count {
            let name_len = body
                .get(pos..pos + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .ok_or_else(|| corrupt("entry truncated"))?;
            let name = body
                .get(pos + 4..pos + 4 + name_len)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or_else(|| corrupt("entry name truncated or not UTF-8"))?;
            let tail = body
                .get(pos + 4 + name_len..pos + 20 + name_len)
                .ok_or_else(|| corrupt("entry numbers truncated"))?;
            segments.push(SegmentEntry {
                name: name.to_string(),
                gen: u64::from_le_bytes(tail[..8].try_into().expect("8 bytes")),
                entries: u64::from_le_bytes(tail[8..].try_into().expect("8 bytes")),
            });
            pos += 20 + name_len;
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Manifest {
            generation,
            segments,
        })
    }

    /// Fences the entry list: for each generation, the last-listed entry
    /// wins (manifest order is append order, so last-listed is the
    /// newest write); earlier claimants are returned for quarantine.
    pub fn fence(self) -> FencedManifest {
        let mut fenced = Vec::new();
        let mut kept: Vec<SegmentEntry> = Vec::with_capacity(self.segments.len());
        for entry in self.segments {
            if let Some(pos) = kept.iter().position(|k| k.gen == entry.gen) {
                fenced.push(kept.remove(pos));
            }
            kept.push(entry);
        }
        FencedManifest {
            manifest: Manifest {
                generation: self.generation,
                segments: kept,
            },
            fenced,
        }
    }
}

/// Loads the manifest from `dir`, or an empty generation-0 manifest if
/// none exists yet. A leftover `MANIFEST.tmp` (crashed writer) is
/// deleted — the rename never happened, so the old manifest is the
/// truth.
pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    if tmp.exists() {
        std::fs::remove_file(&tmp)?;
    }
    let path = dir.join(MANIFEST_NAME);
    if !path.exists() {
        return Ok(Manifest::default());
    }
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    Manifest::from_bytes(&bytes)
}

/// Durably installs `manifest` as the store's truth: write to `.tmp`,
/// fsync, atomic rename over [`MANIFEST_NAME`], fsync the directory.
pub fn store(dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let path = dir.join(MANIFEST_NAME);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&manifest.to_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(())
}

/// Quarantine a file by renaming it to `<name>.quarantined` (never
/// deleting — the bytes may matter for forensics). Collisions append a
/// numeric suffix.
pub fn quarantine(dir: &Path, name: &str) -> Result<PathBuf, StoreError> {
    let src = dir.join(name);
    let mut target = dir.join(format!("{name}.quarantined"));
    let mut n = 1;
    while target.exists() {
        target = dir.join(format!("{name}.quarantined.{n}"));
        n += 1;
    }
    std::fs::rename(&src, &target)?;
    sync_dir(dir)?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flq_manifest_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(name: &str, gen: u64) -> SegmentEntry {
        SegmentEntry {
            name: name.to_string(),
            gen,
            entries: gen * 10,
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = tmp("roundtrip");
        let m = Manifest {
            generation: 7,
            segments: vec![entry("seg-a", 3), entry("seg-b", 7)],
        };
        store(&dir, &m).unwrap();
        assert_eq!(load(&dir).unwrap(), m);
        // Overwrite installs atomically.
        let m2 = Manifest {
            generation: 8,
            segments: vec![entry("seg-c", 8)],
        };
        store(&dir, &m2).unwrap();
        assert_eq!(load(&dir).unwrap(), m2);
    }

    #[test]
    fn missing_manifest_is_generation_zero() {
        let dir = tmp("missing");
        let m = load(&dir).unwrap();
        assert_eq!(m.generation, 0);
        assert!(m.segments.is_empty());
    }

    #[test]
    fn stale_tmp_is_discarded() {
        let dir = tmp("staletmp");
        let m = Manifest {
            generation: 2,
            segments: vec![entry("seg-a", 2)],
        };
        store(&dir, &m).unwrap();
        // A crashed writer left garbage in MANIFEST.tmp.
        std::fs::write(dir.join("MANIFEST.tmp"), b"half-written").unwrap();
        assert_eq!(load(&dir).unwrap(), m, "tmp never renamed, old truth wins");
        assert!(!dir.join("MANIFEST.tmp").exists());
    }

    #[test]
    fn corrupt_manifest_is_refused() {
        let dir = tmp("corrupt");
        store(
            &dir,
            &Manifest {
                generation: 1,
                segments: vec![entry("seg-a", 1)],
            },
        )
        .unwrap();
        let mut bytes = std::fs::read(dir.join(MANIFEST_NAME)).unwrap();
        bytes[6] ^= 0xFF;
        std::fs::write(dir.join(MANIFEST_NAME), &bytes).unwrap();
        assert!(matches!(load(&dir), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn duplicate_generations_are_fenced_newest_wins() {
        let m = Manifest {
            generation: 5,
            segments: vec![
                entry("seg-old-epoch", 4),
                entry("seg-a", 3),
                entry("seg-new-epoch", 4), // later-listed: the newer write
            ],
        };
        let fenced = m.fence();
        assert_eq!(
            fenced.manifest.segments,
            vec![entry("seg-a", 3), entry("seg-new-epoch", 4)]
        );
        assert_eq!(fenced.fenced, vec![entry("seg-old-epoch", 4)]);
    }

    #[test]
    fn quarantine_renames_without_deleting() {
        let dir = tmp("quarantine");
        std::fs::write(dir.join("seg-x.flqs"), b"bytes").unwrap();
        let target = quarantine(&dir, "seg-x.flqs").unwrap();
        assert!(!dir.join("seg-x.flqs").exists());
        assert_eq!(std::fs::read(target).unwrap(), b"bytes");
        // A second quarantine of the same name gets a distinct target.
        std::fs::write(dir.join("seg-x.flqs"), b"again").unwrap();
        let target2 = quarantine(&dir, "seg-x.flqs").unwrap();
        assert!(target2.to_string_lossy().ends_with(".quarantined.1"));
    }
}
