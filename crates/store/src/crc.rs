//! CRC-32C (Castagnoli), the checksum framing every on-disk byte.
//!
//! Table-driven, one byte at a time — plenty for the record sizes the
//! store writes (tens to hundreds of bytes), and dependency-free. The
//! Castagnoli polynomial is the same one used by iSCSI, ext4 and most
//! LSM stores, so the constants below are easy to cross-check against
//! reference vectors (see the tests).

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32C checksum of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A streaming CRC-32C, for checksumming a file region without holding
/// it in memory at once.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Crc32c {
        Crc32c::new()
    }
}

impl Crc32c {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32c {
        Crc32c { state: !0u32 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common reference vectors for CRC-32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut s = Crc32c::new();
        for chunk in data.chunks(7) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), crc32c(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"decision record payload";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() * 8 {
            copy[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32c(&copy), base, "flip at bit {i} undetected");
            copy[i / 8] ^= 1 << (i % 8);
        }
    }
}
