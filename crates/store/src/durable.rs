//! The durable decision tier: [`DurableDecisionCache`] layers an LSM
//! [`Store`] *under* the in-RAM [`DecisionCache`] through its
//! `contains_with_compute` seam.
//!
//! Lookup order on a decision request:
//!
//! 1. **RAM** — the in-process [`DecisionCache`] (semantic keys, the
//!    PR-8 hot tier). A hit never touches disk.
//! 2. **Disk** — on a RAM miss, the persisted tier is probed under the
//!    portable byte key ([`flogic_core::decision_key_bytes`], the exact
//!    serialization of the RAM key). A decodable hit is returned *and*
//!    promoted into RAM, so the second repeat is a pure RAM hit.
//! 3. **Compute** — on a double miss the caller's closure runs (in
//!    `flqd`, the snapshot-cache-backed Theorem 12 engine); the decided
//!    result is written to both tiers. Exhausted verdicts are written
//!    to neither (the codec refuses them), and a corrupt or
//!    version-skewed disk record reads as a miss — a recomputation,
//!    never a wrong answer.
//!
//! Without a data dir ([`DurableDecisionCache::memory`]) the type is a
//! zero-cost pass-through to the RAM cache, so `flqd` keeps one code
//! path whether or not `--data-dir` is set.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flogic_core::{
    decision_key_bytes, decode_decision, encode_decision, ContainmentOptions, ContainmentResult,
    CoreError, DecisionCache,
};
use flogic_model::ConjunctiveQuery;

use crate::store::{Store, StoreOptions};
use crate::StoreError;

/// Counters for the durable tier's own traffic (disk probes only —
/// RAM-tier hits never reach it).
#[derive(Clone, Copy, Debug, Default)]
pub struct DurableStats {
    /// Disk probes that returned a decodable persisted decision.
    pub disk_hits: u64,
    /// Disk probes that found nothing.
    pub disk_misses: u64,
    /// Disk reads or writes that failed (I/O error or undecodable
    /// record); the request fell through to compute.
    pub disk_errors: u64,
}

/// A two-tier decision cache: in-RAM [`DecisionCache`] over an optional
/// on-disk [`Store`]. See the module docs for the lookup protocol.
#[derive(Debug)]
pub struct DurableDecisionCache {
    ram: DecisionCache,
    disk: Option<Arc<Store>>,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_errors: AtomicU64,
}

impl DurableDecisionCache {
    /// A RAM-only cache (no `--data-dir`): behaves exactly like a bare
    /// [`DecisionCache`].
    pub fn memory() -> DurableDecisionCache {
        DurableDecisionCache {
            ram: DecisionCache::new(),
            disk: None,
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            disk_errors: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) the durable tier under `dir` with default
    /// [`StoreOptions`].
    pub fn open(dir: &Path) -> Result<DurableDecisionCache, StoreError> {
        DurableDecisionCache::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) the durable tier under `dir`.
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<DurableDecisionCache, StoreError> {
        let store = Store::open(dir, opts)?;
        Ok(DurableDecisionCache {
            ram: DecisionCache::new(),
            disk: Some(Arc::new(store)),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            disk_errors: AtomicU64::new(0),
        })
    }

    /// The in-RAM hot tier.
    pub fn ram(&self) -> &DecisionCache {
        &self.ram
    }

    /// The on-disk tier, when one is attached.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.disk.as_ref()
    }

    /// Entries resident in the RAM tier (mirrors [`DecisionCache::len`]).
    pub fn len(&self) -> usize {
        self.ram.len()
    }

    /// True when the RAM tier is empty.
    pub fn is_empty(&self) -> bool {
        self.ram.is_empty()
    }

    /// Drops the RAM tier's entries (the disk tier is unaffected — it
    /// will re-warm RAM on the next probes).
    pub fn clear_ram(&self) {
        self.ram.clear();
    }

    /// The durable tier's own traffic counters.
    pub fn durable_stats(&self) -> DurableStats {
        DurableStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
        }
    }

    /// Flushes the disk tier's memtable so everything decided so far
    /// survives a crash (graceful shutdown calls this).
    pub fn flush(&self) -> Result<(), StoreError> {
        match &self.disk {
            Some(store) => store.flush(),
            None => Ok(()),
        }
    }

    /// [`DecisionCache::contains_with_compute`] with the disk tier
    /// interposed between the RAM lookup and `compute`.
    pub fn contains_with_compute(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
        compute: impl FnOnce() -> Result<ContainmentResult, CoreError>,
    ) -> Result<ContainmentResult, CoreError> {
        let Some(store) = &self.disk else {
            return self.ram.contains_with_compute(q1, q2, opts, compute);
        };
        self.ram.contains_with_compute(q1, q2, opts, || {
            let key = decision_key_bytes(q1, q2, opts);
            match store.get(&key) {
                Ok(Some(bytes)) => {
                    if let Some(decision) = decode_decision(&bytes) {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        // Returning it through the compute seam promotes
                        // it into RAM; re-putting to disk is skipped
                        // below because the bytes came from disk.
                        return Ok(decision);
                    }
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => {
                    self.disk_misses.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            let result = compute()?;
            if let Some(bytes) = encode_decision(&result) {
                if store.put(&key, &bytes).is_err() {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(result)
        })
    }

    /// [`DecisionCache::contains_with`] through both tiers.
    pub fn contains_with(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        opts: &ContainmentOptions,
    ) -> Result<ContainmentResult, CoreError> {
        self.contains_with_compute(q1, q2, opts, || flogic_core::contains_with(q1, q2, opts))
    }

    /// [`DecisionCache::contains`] through both tiers.
    pub fn contains(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> Result<ContainmentResult, CoreError> {
        self.contains_with(q1, q2, &ContainmentOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flogic_syntax::parse_query;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flq_durable_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn memory_mode_is_a_plain_cache() {
        let cache = DurableDecisionCache::memory();
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        assert!(cache.contains(&q1, &q2).unwrap().holds());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.durable_stats().disk_misses, 0);
    }

    #[test]
    fn decisions_survive_reopen_and_promote_to_ram() {
        let dir = tmp("survive");
        let q1 = q("q(X, Z) :- sub(X, Y), sub(Y, Z).");
        let q2 = q("p(X, Z) :- sub(X, Z).");
        let fresh = flogic_core::contains_with(&q1, &q2, &ContainmentOptions::default()).unwrap();
        {
            let cache = DurableDecisionCache::open(&dir).unwrap();
            assert!(cache.contains(&q1, &q2).unwrap().holds());
            assert_eq!(cache.durable_stats().disk_misses, 1);
            cache.flush().unwrap();
        }
        let cache = DurableDecisionCache::open(&dir).unwrap();
        assert!(cache.is_empty(), "RAM tier starts cold");
        // Renamed variant: semantic key, so the persisted entry answers.
        let q1r = q("qq(U, W) :- sub(V, W), sub(U, V).");
        let hit = cache
            .contains_with_compute(&q1r, &q2, &ContainmentOptions::default(), || {
                panic!("must be served from disk, not recomputed")
            })
            .unwrap();
        assert_eq!(cache.durable_stats().disk_hits, 1);
        // Bit-identical to fresh computation (witness aside).
        assert_eq!(hit.verdict(), fresh.verdict());
        assert_eq!(hit.is_vacuous(), fresh.is_vacuous());
        assert_eq!(hit.chase_conjuncts(), fresh.chase_conjuncts());
        assert_eq!(hit.level_bound(), fresh.level_bound());
        assert_eq!(hit.max_chase_level(), fresh.max_chase_level());
        assert_eq!(hit.decided_by_analysis(), fresh.decided_by_analysis());
        // Promoted: the second ask is a RAM hit, no disk probe.
        let before = cache.durable_stats();
        assert!(cache.contains(&q1r, &q2).unwrap().holds());
        let after = cache.durable_stats();
        assert_eq!(before.disk_hits, after.disk_hits);
        assert_eq!(before.disk_misses, after.disk_misses);
    }

    #[test]
    fn exhausted_verdicts_are_not_persisted() {
        let dir = tmp("exhausted");
        let cache = DurableDecisionCache::open(&dir).unwrap();
        let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
        let q2 = q("qq() :- data(T, A, V), member(V, T).");
        let tight = ContainmentOptions {
            max_conjuncts: 5,
            analysis: false,
            ..Default::default()
        };
        let r = cache.contains_with(&q1, &q2, &tight).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(cache.store().unwrap().stats().puts, 0);
        // A generous rerun on the same key decides and persists.
        let generous = ContainmentOptions {
            analysis: false,
            ..Default::default()
        };
        assert!(cache.contains_with(&q1, &q2, &generous).unwrap().holds());
        assert_eq!(cache.store().unwrap().stats().puts, 1);
    }
}
