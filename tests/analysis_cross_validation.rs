//! Cross-validation of the static-analysis containment fast paths.
//!
//! `ContainmentOptions::analysis` promises a verdict that is bit-identical
//! with the toggle on or off; only the amount of chasing (and the
//! `Metrics` analysis counters) may differ. These tests replay the paper
//! pairs and seeded random workloads in the style of the E1–E9 harness in
//! both modes and compare every outcome, and additionally pin down
//! queries where each early decision must fire.

use flogic_lite::core::{contains_with, ContainmentOptions};
use flogic_lite::gen::rng::SplitMix64;
use flogic_lite::gen::{random_query, QueryGenConfig};
use flogic_lite::model::ConjunctiveQuery;
use flogic_lite::prelude::*;
use flogic_lite::term::Metrics;

fn opts(analysis: bool) -> ContainmentOptions {
    ContainmentOptions {
        analysis,
        ..ContainmentOptions::default()
    }
}

/// The observable verdict: `holds`/`vacuous` on success, the error text
/// otherwise. The two modes must agree on this exactly.
fn verdict(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    analysis: bool,
) -> Result<(bool, bool), String> {
    contains_with(q1, q2, &opts(analysis))
        .map(|r| (r.holds(), r.is_vacuous()))
        .map_err(|e| e.to_string())
}

fn assert_agreement(label: &str, q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) {
    let on = verdict(q1, q2, true);
    let off = verdict(q1, q2, false);
    assert_eq!(
        on, off,
        "{label}: analysis on/off disagree\n  q1: {q1}\n  q2: {q2}"
    );
}

#[test]
fn paper_pairs_agree_in_both_modes() {
    let q = |s: &str| parse_query(s).expect("paper query parses");
    let pairs = [
        (
            "joinable-attributes",
            q("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."),
            q("qq(A,B) :- T1[A*=>T2], T2[B*=>_]."),
        ),
        (
            "mandatory-attribute",
            q("q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class."),
            q("qq(Att,Class,Type) :- Obj[Att->_], Obj:Class, Class[Att*=>Type]."),
        ),
    ];
    for (name, q1, q2) in &pairs {
        assert_agreement(name, q1, q2);
        assert_agreement(name, q2, q1);
    }
}

#[test]
fn random_workloads_agree_in_both_modes() {
    // Mirrors the generator settings of the E4/E6 harness experiments, plus
    // skewed predicate mixes that make dead q2 atoms (and hence the
    // early-false path) likely.
    let configs = [
        QueryGenConfig::default(),
        QueryGenConfig {
            n_atoms: 3,
            const_prob: 0.6,
            ..QueryGenConfig::default()
        },
        // q1 drawn from {member, sub} only: its closure misses data/type,
        // while the partner config still emits them.
        QueryGenConfig {
            n_atoms: 4,
            pred_weights: [1, 1, 0, 0, 0, 0],
            ..QueryGenConfig::default()
        },
        // data/funct heavy: exercises the chase-may-fail guard.
        QueryGenConfig {
            n_atoms: 4,
            const_prob: 0.8,
            pred_weights: [0, 0, 3, 1, 0, 2],
            ..QueryGenConfig::default()
        },
    ];
    let mut rng = SplitMix64::seed_from_u64(0xF10C);
    let mut checked = 0;
    for cfg1 in &configs {
        for cfg2 in &configs {
            for _ in 0..4 {
                let q1 = random_query(cfg1, &mut rng);
                let q2 = random_query(cfg2, &mut rng);
                if q1.arity() != q2.arity() {
                    // Arity mismatches error identically in both modes; the
                    // interesting comparisons are real decisions.
                    continue;
                }
                assert_agreement("random", &q1, &q2);
                checked += 1;
            }
        }
    }
    assert!(checked >= 20, "only {checked} random pairs compared");
}

#[test]
fn early_false_fires_and_agrees() {
    // q1's predicate closure under Σ_FL is {sub}; q2 needs data, which is
    // not derivable, and q1 cannot make the chase fail (no data/funct).
    let q1 = parse_query("q(X) :- sub(X, Y), sub(Y, Z).").unwrap();
    let q2 = parse_query("p(X) :- data(X, a, V).").unwrap();
    let before = Metrics::global().snapshot();
    let on = contains_with(&q1, &q2, &opts(true)).unwrap();
    let delta = Metrics::global().snapshot().since(&before);
    assert!(!on.holds());
    assert!(on.decided_by_analysis(), "early-false path should fire");
    assert!(delta.analysis_early_false >= 1, "counter should record it");
    assert_agreement("early-false", &q1, &q2);
}

#[test]
fn early_true_fires_and_agrees() {
    // A visible ρ4 violation: one functional attribute, two distinct
    // constant values. The chase fails at level 0, so containment is
    // vacuously true — analysis answers without materializing anything.
    let q1 = parse_query("q() :- data(o, a, 1), data(o, a, 2), funct(a, o).").unwrap();
    let q2 = parse_query("p() :- sub(X, Y).").unwrap();
    let before = Metrics::global().snapshot();
    let on = contains_with(&q1, &q2, &opts(true)).unwrap();
    let delta = Metrics::global().snapshot().since(&before);
    assert!(on.holds() && on.is_vacuous());
    assert!(on.decided_by_analysis(), "early-true path should fire");
    assert!(delta.analysis_early_true >= 1, "counter should record it");
    assert_agreement("early-true", &q1, &q2);
}

#[test]
fn guarded_case_chases_and_agrees() {
    // The functionality of `a` only reaches `o` through a sub-step, which
    // `direct_unsat` does not look for; and because data+funct are present
    // with two distinct constants, the chase-may-fail guard must also
    // suppress the early-false answer for the dead `type` atom in q2.
    let q1 =
        parse_query("q() :- data(o, a, 1), data(o, a, 2), member(o, c), sub(c, d), funct(a, d).")
            .unwrap();
    let q2 = parse_query("p() :- type(X, Y, Z).").unwrap();
    let on = contains_with(&q1, &q2, &opts(true)).unwrap();
    assert!(!on.decided_by_analysis(), "guard must force a real chase");
    assert_agreement("guarded", &q1, &q2);
}
