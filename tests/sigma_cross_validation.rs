//! Cross-validation of user-supplied `Σ` against the built-in `Σ_FL`,
//! plus property tests of the Σ-admission classifier.
//!
//! The central contract: a `.sigma` transcription of the paper's twelve
//! rules must be *bit-identical* to the built-in set — same structural
//! recognition, same fingerprint (hence shared cache entries), same
//! verdicts and chase statistics, same CLI output. And for arbitrary
//! generated rule sets the classifier must never panic, must always
//! attach spans to its rejections, and must derive chase-depth bounds
//! the actual chase never exceeds.

use std::process::Command;
use std::sync::Arc;

use flogic_lite::analysis::{admit_sigma, classify_rule_set, SigmaClass};
use flogic_lite::chase::{chase_bounded, ChaseOptions, ChaseOutcome};
use flogic_lite::core::{contains_with, ContainmentOptions};
use flogic_lite::gen::rng::SplitMix64;
use flogic_lite::gen::{random_query, random_rule_set, QueryGenConfig, SigmaGenConfig};
use flogic_lite::model::RuleSet;
use flogic_lite::prelude::*;

fn example(name: &str) -> String {
    let path = format!("{}/examples/sigma/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).expect("example .sigma file exists")
}

fn parsed_sigma_fl() -> Arc<RuleSet> {
    let admission = admit_sigma(&example("sigma_fl.sigma"), "sigma_fl.sigma").expect("parses");
    assert!(admission.is_admitted());
    admission.rule_set().clone()
}

fn q(s: &str) -> ConjunctiveQuery {
    parse_query(s).unwrap()
}

#[test]
fn parsed_sigma_fl_is_structurally_the_builtin() {
    let parsed = parsed_sigma_fl();
    assert!(parsed.is_sigma_fl(), "transcription must be recognised");
    assert_eq!(
        parsed.fingerprint(),
        RuleSet::sigma_fl().fingerprint(),
        "renaming-invariant fingerprints must agree (shared cache entries)"
    );
    assert_eq!(parsed.len(), 12);
}

#[test]
fn parsed_sigma_fl_classifies_like_the_builtin() {
    // Σ_FL is guarded, not weakly acyclic (the ρ5 cycle), not sticky.
    let admission = classify_rule_set(parsed_sigma_fl());
    assert!(admission.is_admitted());
    assert_eq!(admission.classes(), [SigmaClass::Guarded]);
    let builtin = classify_rule_set(RuleSet::sigma_fl().clone());
    assert_eq!(builtin.classes(), admission.classes());
    assert_eq!(builtin.is_admitted(), admission.is_admitted());
}

#[test]
fn verdicts_under_parsed_sigma_fl_are_bit_identical() {
    let pairs = [
        // Positive, needs Σ_FL reasoning (rho2 transitivity).
        ("q(X, Z) :- sub(X, Y), sub(Y, Z).", "p(X, Z) :- sub(X, Z)."),
        // Positive with value invention (rho5 + rho1).
        (
            "q(O) :- member(O, c), mandatory(a, c), type(c, a, t).",
            "p(O) :- data(O, a, V), member(V, T).",
        ),
        // Negative.
        ("q(X) :- member(X, c).", "p(X) :- sub(X, c)."),
        // Vacuous: rho4 equates two distinct constants.
        (
            "q() :- data(o, a, 1), data(o, a, 2), funct(a, o).",
            "p() :- sub(X, Y).",
        ),
    ];
    let custom_opts = ContainmentOptions {
        sigma: parsed_sigma_fl(),
        ..Default::default()
    };
    for (s1, s2) in pairs {
        let (q1, q2) = (q(s1), q(s2));
        let default = contains_with(&q1, &q2, &ContainmentOptions::default()).unwrap();
        let custom = contains_with(&q1, &q2, &custom_opts).unwrap();
        assert_eq!(default.verdict(), custom.verdict(), "{s1} vs {s2}");
        assert_eq!(default.holds(), custom.holds());
        assert_eq!(default.is_vacuous(), custom.is_vacuous());
        assert_eq!(default.witness(), custom.witness());
        assert_eq!(default.level_bound(), custom.level_bound());
        assert_eq!(default.chase_conjuncts(), custom.chase_conjuncts());
        assert_eq!(default.max_chase_level(), custom.max_chase_level());
        assert_eq!(
            default.decided_by_analysis(),
            custom.decided_by_analysis(),
            "the static fast paths must stay active for a structural Σ_FL"
        );
    }
}

#[test]
fn cli_output_under_parsed_sigma_fl_is_bit_identical() {
    let flq = env!("CARGO_BIN_EXE_flq");
    let sigma = format!(
        "{}/examples/sigma/sigma_fl.sigma",
        env!("CARGO_MANIFEST_DIR")
    );
    let q1 = "q(X, Z) :- sub(X, Y), sub(Y, Z).";
    let q2 = "p(X, Z) :- sub(X, Z).";
    let default = Command::new(flq)
        .args(["contains", q1, q2])
        .output()
        .expect("flq runs");
    let custom = Command::new(flq)
        .args(["contains", q1, q2, "--sigma", &sigma])
        .output()
        .expect("flq runs");
    assert_eq!(default.status.code(), custom.status.code());
    assert_eq!(
        String::from_utf8_lossy(&default.stdout),
        String::from_utf8_lossy(&custom.stdout),
        "stdout must match byte for byte"
    );
}

#[test]
fn rejected_set_blocks_every_sigma_subcommand_with_exit_2() {
    let flq = env!("CARGO_BIN_EXE_flq");
    let rejected = format!(
        "{}/examples/sigma/rejected.sigma",
        env!("CARGO_MANIFEST_DIR")
    );
    for args in [
        vec!["lint", "--sigma", rejected.as_str()],
        vec![
            "contains",
            "q(X) :- member(X, c).",
            "p(X) :- member(X, c).",
            "--sigma",
            rejected.as_str(),
        ],
        vec![
            "chase",
            "q(X) :- member(X, c).",
            "--sigma",
            rejected.as_str(),
        ],
    ] {
        let out = Command::new(flq).args(&args).output().expect("flq runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(text.contains("FL01"), "diagnostics must be shown: {text}");
    }
}

#[test]
fn classifier_never_panics_and_rejections_carry_spans() {
    let cfg = SigmaGenConfig::default();
    let mut rejected = 0;
    let mut admitted = 0;
    for seed in 0..200 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let set = random_rule_set(&cfg, &mut rng);
        let admission = classify_rule_set(Arc::new(set));
        if admission.is_admitted() {
            admitted += 1;
            assert!(!admission.classes().is_empty());
        } else {
            rejected += 1;
            // Generated rules are well-formed, so rejection can only mean
            // "all three classes failed" — and each failure must be
            // reported with a coded, positioned diagnostic.
            assert!(
                admission
                    .diagnostics()
                    .iter()
                    .any(|d| d.code.code().starts_with("FL01")),
                "seed {seed}: rejection without an FL01x code"
            );
            assert!(
                admission.diagnostics().iter().all(|d| d.pos.line >= 1),
                "seed {seed}: diagnostic without a span"
            );
        }
        // The summary always renders.
        assert!(!admission.summary().is_empty());
    }
    // The default config must actually sample both outcomes, or this
    // property test is vacuous.
    assert!(admitted > 10, "only {admitted} admitted sets in 200 seeds");
    assert!(rejected > 10, "only {rejected} rejected sets in 200 seeds");
}

#[test]
fn weakly_acyclic_chase_never_exceeds_the_derived_bound() {
    let set_cfg = SigmaGenConfig::default();
    let query_cfg = QueryGenConfig {
        n_atoms: 3,
        n_vars: 3,
        n_consts: 2,
        ..Default::default()
    };
    let mut checked = 0;
    for seed in 0..120 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let set = Arc::new(random_rule_set(&set_cfg, &mut rng));
        let admission = classify_rule_set(set.clone());
        if !admission.classes().contains(&SigmaClass::WeaklyAcyclic) {
            continue;
        }
        let query = random_query(&query_cfg, &mut rng);
        let bound = admission.level_bound(query.size(), 4);
        let chase = chase_bounded(
            &query,
            &ChaseOptions {
                level_bound: bound,
                max_conjuncts: 200_000,
                sigma: set,
                ..Default::default()
            },
        )
        .unwrap();
        match chase.outcome() {
            ChaseOutcome::Completed | ChaseOutcome::Failed { .. } => {}
            other => panic!(
                "seed {seed}: weakly acyclic chase should terminate below \
                 the derived bound {bound}, got {other:?} at level {}",
                chase.max_level()
            ),
        }
        assert!(
            chase.max_level() <= bound,
            "seed {seed}: level {} exceeded the derived bound {bound}",
            chase.max_level()
        );
        checked += 1;
    }
    assert!(checked > 10, "only {checked} weakly acyclic sets sampled");
}
