//! Cross-validation of semantic (canonicalized) cache keys against the
//! raw path, plus property tests of the canonical form itself.
//!
//! The central contract mirrors `tests/sigma_cross_validation.rs`: with
//! canonicalization on (the default) and off (`--no-canon` /
//! `ContainmentOptions::canon = false`), every containment question gets
//! the *same verdict* — the canonical form only changes which cache
//! entries are shared, never what is answered. And the key itself must
//! be a true semantic invariant: stable under variable renaming, body
//! permutation and redundant-atom insertion, and never identifying two
//! queries that are not classically equivalent.

use flogic_lite::core::{
    canonical_query, classic_contains, contains_with, ContainmentOptions, DecisionCache, QueryKey,
};
use flogic_lite::gen::rng::SplitMix64;
use flogic_lite::gen::{
    add_redundant_atoms, generalize, mutate_variant, permute_body, random_query, rename_vars,
    GeneralizeConfig, QueryGenConfig,
};
use flogic_lite::prelude::*;

fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}

fn q(s: &str) -> ConjunctiveQuery {
    parse_query(s).unwrap()
}

fn workload_cfg() -> QueryGenConfig {
    QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    }
}

fn canon_off() -> ContainmentOptions {
    ContainmentOptions {
        canon: false,
        ..Default::default()
    }
}

#[test]
fn fixed_pairs_verdicts_identical_canon_on_and_off() {
    let pairs = [
        // Positive, needs Σ_FL reasoning (rho2 transitivity).
        ("q(X, Z) :- sub(X, Y), sub(Y, Z).", "p(X, Z) :- sub(X, Z)."),
        // Positive with value invention (rho5 + rho1).
        (
            "q(O) :- member(O, c), mandatory(a, c), type(c, a, t).",
            "p(O) :- data(O, a, V), member(V, T).",
        ),
        // Negative.
        ("q(X) :- member(X, c).", "p(X) :- sub(X, c)."),
        // Vacuous: rho4 equates two distinct constants.
        (
            "q() :- data(o, a, 1), data(o, a, 2), funct(a, o).",
            "p() :- sub(X, Y).",
        ),
        // Redundant atoms on the left: the core is the transitivity pair.
        (
            "q(X, Z) :- sub(X, Y), sub(Y, Z), sub(X, W), sub(W, Z).",
            "p(X, Z) :- sub(X, Z).",
        ),
    ];
    let on_opts = ContainmentOptions::default();
    let off_opts = canon_off();
    assert!(on_opts.canon, "canonicalization is on by default");
    for (s1, s2) in pairs {
        // Fresh caches per pair: a cold ask computes fresh on the
        // original queries in both modes, so the *entire result* must be
        // identical.
        let on_cache = DecisionCache::new();
        let off_cache = DecisionCache::new();
        let (q1, q2) = (q(s1), q(s2));
        let on = on_cache.contains_with(&q1, &q2, &on_opts).unwrap();
        let off = off_cache.contains_with(&q1, &q2, &off_opts).unwrap();
        assert_eq!(on.verdict(), off.verdict(), "{s1} vs {s2}");
        assert_eq!(on.holds(), off.holds());
        assert_eq!(on.is_vacuous(), off.is_vacuous());
        assert_eq!(on.witness(), off.witness());
        assert_eq!(on.level_bound(), off.level_bound());
        assert_eq!(on.chase_conjuncts(), off.chase_conjuncts());
        assert_eq!(on.max_chase_level(), off.max_chase_level());
        assert_eq!(on.decided_by_analysis(), off.decided_by_analysis());
        // Replays — renamed-apart variants — must keep the verdict.
        let q1v = q1.rename_apart(&q2);
        let on2 = on_cache.contains_with(&q1v, &q2, &on_opts).unwrap();
        let off2 = off_cache.contains_with(&q1v, &q2, &off_opts).unwrap();
        assert_eq!(on2.verdict(), on.verdict());
        assert_eq!(off2.verdict(), off.verdict());
    }
    // A shared canon-on cache unifies the transitivity pair with its
    // redundant-atom variant (same cores): one entry, second ask is a
    // replay with the same verdict.
    let shared = DecisionCache::new();
    let first = shared
        .contains_with(&q(pairs[0].0), &q(pairs[0].1), &on_opts)
        .unwrap();
    assert_eq!(shared.len(), 1);
    let variant = shared
        .contains_with(&q(pairs[4].0), &q(pairs[4].1), &on_opts)
        .unwrap();
    assert_eq!(variant.verdict(), first.verdict());
    assert_eq!(shared.len(), 1, "redundant-atom variant shares the entry");
}

#[test]
fn generated_variant_workload_verdicts_identical_canon_on_and_off() {
    let cfg = workload_cfg();
    let gcfg = GeneralizeConfig::default();
    let on_cache = DecisionCache::new();
    let off_cache = DecisionCache::new();
    let on_opts = ContainmentOptions::default();
    let off_opts = canon_off();
    let mut decided = 0;
    for seed in 0..120u64 {
        let q1 = random_query(&cfg, &mut rng(seed));
        let q2 = generalize(&q1, &gcfg, &mut rng(seed + 10_000));
        // The base pair plus a mutated variant of each side: the traffic
        // shape where canon-on takes the hit path and canon-off
        // recomputes — the verdicts must agree everywhere.
        let variants = [
            (q1.clone(), q2.clone()),
            (mutate_variant(&q1, &mut rng(seed + 20_000)), q2.clone()),
            (
                mutate_variant(&q1, &mut rng(seed + 30_000)),
                mutate_variant(&q2, &mut rng(seed + 40_000)),
            ),
        ];
        for (a, b) in &variants {
            let on = on_cache.contains_with(a, b, &on_opts).unwrap();
            let off = off_cache.contains_with(a, b, &off_opts).unwrap();
            assert_eq!(
                on.verdict(),
                off.verdict(),
                "seed {seed}: canon-on and canon-off disagree on {a} vs {b}"
            );
            assert_eq!(on.holds(), off.holds(), "seed {seed}");
            assert_eq!(on.is_vacuous(), off.is_vacuous(), "seed {seed}");
            if !on.is_exhausted() {
                decided += 1;
            }
        }
    }
    assert!(decided > 300, "only {decided} decided runs in the sweep");
    // The semantic table must be unifying variants: strictly fewer
    // entries than the structural one.
    assert!(
        on_cache.len() < off_cache.len(),
        "canon-on entries ({}) should undercut canon-off ({})",
        on_cache.len(),
        off_cache.len()
    );
}

#[test]
fn query_key_is_invariant_under_the_three_mutators() {
    let cfg = workload_cfg();
    for seed in 0..200u64 {
        let q = random_query(&cfg, &mut rng(seed));
        let key = QueryKey::of(&q);
        let renamed = rename_vars(&q, &mut rng(seed + 1));
        assert_eq!(key, QueryKey::of(&renamed), "seed {seed}: renaming");
        assert_eq!(
            QueryKey::structural(&q),
            QueryKey::structural(&renamed),
            "seed {seed}: renaming must not disturb even the structural key"
        );
        let permuted = permute_body(&q, &mut rng(seed + 2));
        assert_eq!(key, QueryKey::of(&permuted), "seed {seed}: permutation");
        assert_eq!(
            QueryKey::structural(&q),
            QueryKey::structural(&permuted),
            "seed {seed}: permutation must not disturb even the structural key"
        );
        let padded = add_redundant_atoms(&q, 2, &mut rng(seed + 3));
        assert_eq!(key, QueryKey::of(&padded), "seed {seed}: redundant atoms");
        let composite = mutate_variant(&q, &mut rng(seed + 4));
        assert_eq!(key, QueryKey::of(&composite), "seed {seed}: composite");
        // The canonical representative itself is a fixed point: every
        // variant maps to the same query, and its key is the class key.
        assert_eq!(
            canonical_query(&q),
            canonical_query(&composite),
            "seed {seed}"
        );
        assert_eq!(QueryKey::of(&canonical_query(&q)), key, "seed {seed}");
    }
}

#[test]
fn distinct_cores_never_collide_on_a_thousand_pairs() {
    let cfg = workload_cfg();
    let mut collisions = 0;
    let mut engineered = 0;
    for seed in 0..1_000u64 {
        let a = random_query(&cfg, &mut rng(seed));
        // Every fourth pair is engineered to share a core (a mutated
        // variant); the rest are independent draws. This keeps the
        // soundness check non-vacuous: equal keys *do* occur, and every
        // occurrence must be backed by classical equivalence.
        let b = if seed % 4 == 0 {
            engineered += 1;
            mutate_variant(&a, &mut rng(seed + 700_000))
        } else {
            random_query(&cfg, &mut rng(seed + 500_000))
        };
        if QueryKey::of(&a) == QueryKey::of(&b) {
            collisions += 1;
            if a.arity() == b.arity() {
                assert!(
                    classic_contains(&a, &b).unwrap() && classic_contains(&b, &a).unwrap(),
                    "seed {seed}: equal keys without classical equivalence: {a} vs {b}"
                );
            } else {
                panic!("seed {seed}: equal keys across arities: {a} vs {b}");
            }
        } else if seed % 4 == 0 {
            panic!("seed {seed}: a mutated variant missed its own key: {a} vs {b}");
        }
    }
    assert!(
        collisions >= engineered,
        "every engineered pair must collide ({collisions} < {engineered})"
    );
}

#[test]
fn exhausted_and_truncated_runs_agree_across_canon_modes() {
    // A truncating level bound forces the structural key path even with
    // canon on; the verdicts must still agree with canon off.
    let q1 = q("q() :- mandatory(A, T), type(T, A, T).");
    let q2 = q("qq() :- data(T, A, V), member(V, T).");
    for bound in [0u32, 1, 2] {
        let on = contains_with(
            &q1,
            &q2,
            &ContainmentOptions {
                level_bound: Some(bound),
                ..Default::default()
            },
        )
        .unwrap();
        let off = contains_with(
            &q1,
            &q2,
            &ContainmentOptions {
                level_bound: Some(bound),
                canon: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(on.verdict(), off.verdict(), "bound {bound}");
        assert_eq!(on.holds(), off.holds(), "bound {bound}");
    }
}
