//! Drift tests between `docs/CLI.md` and the actual `flq` interface.
//!
//! Documentation that references flags which no longer exist — or omits
//! flags that do — is worse than no documentation. These tests extract
//! the flag and subcommand vocabulary from both `flq help` and
//! `docs/CLI.md` and require the two to agree in *both* directions, so
//! adding a flag without documenting it (or documenting one without
//! adding it) fails CI.

use std::collections::BTreeSet;
use std::process::Command;

fn flq(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_flq"))
        .args(args)
        .output()
        .expect("flq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("flq exits normally"),
    )
}

fn docs() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/CLI.md");
    let text = std::fs::read_to_string(path).expect("docs/CLI.md exists");
    // Everything below the marker documents bench binaries (`loadgen`,
    // `harness`), whose flags are not part of `flq`'s vocabulary.
    match text.split_once("<!-- cli-docs-drift-test: stop") {
        Some((flq_part, _bench_part)) => flq_part.to_string(),
        None => text,
    }
}

/// Every `--flag` token in `text` (longest run of `[a-z-]` after `--`,
/// requiring a letter first so table rules like `|----|` don't match).
fn flags(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if &bytes[i..i + 2] == b"--" && bytes[i + 2].is_ascii_lowercase() {
            let start = i + 2;
            let mut end = start;
            while end < bytes.len() && (bytes[end].is_ascii_lowercase() || bytes[end] == b'-') {
                end += 1;
            }
            out.insert(format!("--{}", &text[start..end]));
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

/// Every word following an occurrence of `prefix` in `text`.
fn words_after<'a>(text: &'a str, prefix: &str) -> BTreeSet<&'a str> {
    let mut out = BTreeSet::new();
    let mut rest = text;
    while let Some(at) = rest.find(prefix) {
        rest = &rest[at + prefix.len()..];
        let word: &str = rest
            .split(|c: char| !(c.is_ascii_lowercase() || c == '-'))
            .next()
            .unwrap_or("");
        if !word.is_empty() {
            out.insert(word);
        }
    }
    out
}

#[test]
fn documented_flags_match_flq_help_exactly() {
    let (help, _, code) = flq(&["help"]);
    assert_eq!(code, 0);
    let in_help = flags(&help);
    let in_docs = flags(&docs());
    let undocumented: Vec<_> = in_help.difference(&in_docs).collect();
    let phantom: Vec<_> = in_docs.difference(&in_help).collect();
    assert!(
        undocumented.is_empty(),
        "flags in `flq help` missing from docs/CLI.md: {undocumented:?}"
    );
    assert!(
        phantom.is_empty(),
        "flags documented in docs/CLI.md that `flq help` does not print: {phantom:?}"
    );
}

#[test]
fn documented_subcommands_match_flq_help_exactly() {
    let (help, _, code) = flq(&["help"]);
    assert_eq!(code, 0);
    // Help lists subcommands as `  flq <name> …` usage lines; the docs
    // reference them as backticked `` `flq <name>` `` spans.
    let in_help: BTreeSet<&str> = help
        .lines()
        .filter_map(|l| l.strip_prefix("  flq "))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let doc_text = docs();
    let in_docs = words_after(&doc_text, "`flq ");
    assert!(
        in_help.contains("serve") && in_help.contains("contains"),
        "help extraction looks broken: {in_help:?}"
    );
    let undocumented: Vec<_> = in_help.difference(&in_docs).collect();
    let phantom: Vec<_> = in_docs.difference(&in_help).collect();
    assert!(
        undocumented.is_empty(),
        "subcommands in `flq help` missing from docs/CLI.md: {undocumented:?}"
    );
    assert!(
        phantom.is_empty(),
        "docs/CLI.md references subcommands `flq help` does not list: {phantom:?}"
    );
}

#[test]
fn help_prints_reference_on_stdout_and_exits_zero() {
    for invocation in [&["help"][..], &["--help"], &["-h"]] {
        let (stdout, stderr, code) = flq(invocation);
        assert_eq!(code, 0, "{invocation:?}");
        assert!(stdout.starts_with("usage:"), "{invocation:?}: {stdout}");
        assert!(stdout.contains("exit codes:"), "{invocation:?}: {stdout}");
        assert!(stderr.is_empty(), "{invocation:?}: {stderr}");
    }
}

#[test]
fn unknown_subcommand_lists_the_available_ones() {
    let (stdout, stderr, code) = flq(&["containz"]);
    assert_eq!(code, 2, "unknown subcommand is a usage error");
    assert!(stdout.is_empty(), "errors go to stderr: {stdout}");
    assert!(
        stderr.contains("unknown subcommand \"containz\""),
        "{stderr}"
    );
    for name in [
        "contains", "explain", "profile", "chase", "minimize", "lint", "eval", "serve", "cache",
        "help",
    ] {
        assert!(stderr.contains(name), "missing {name} in: {stderr}");
    }
}

#[test]
fn cache_subcommand_stats_and_verifies_a_fresh_store() {
    let dir = std::env::temp_dir().join(format!("flq_cli_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp path");

    // An unknown action is a usage error before any store is touched.
    let (_, stderr, code) = flq(&["cache", "frobnicate", dir_s]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown cache action"), "{stderr}");
    assert!(!dir.exists(), "usage error must not create the dir");

    // `stat` creates-or-opens; a fresh dir is an empty, clean store.
    let (stdout, stderr, code) = flq(&["cache", "stat", dir_s]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("generation"), "{stdout}");
    assert!(stdout.contains("segments          0"), "{stdout}");

    let (stdout, stderr, code) = flq(&["cache", "verify", dir_s]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("clean"), "{stdout}");

    let (stdout, stderr, code) = flq(&["cache", "inspect", dir_s, "--limit", "3"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("0 persisted decision(s)"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}
