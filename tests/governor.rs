//! End-to-end semantics of the resource governor: deadlines, step and
//! byte budgets, and cooperative cancellation must turn into `Exhausted`
//! outcomes with usable partial state — never panics, never hangs — and
//! a budget that is not hit must be invisible.

use std::time::{Duration, Instant};

use flogic_lite::chase::{chase_bounded, Budget, CancelToken, ChaseOptions, ExhaustReason};
use flogic_lite::core::{contains_with, ContainmentOptions, Verdict};
use flogic_lite::prelude::*;

/// Example 2's infinite-chase query: the ρ5–ρ1–ρ6–ρ10 pump.
fn pump_query() -> ConjunctiveQuery {
    parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap()
}

#[test]
fn elapsed_deadline_reports_exhausted_with_partial_state() {
    let q = pump_query();
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 40,
            max_conjuncts: 1_000_000,
            budget: Budget::with_timeout(Duration::ZERO),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(chase.is_exhausted());
    assert!(
        matches!(
            chase.outcome(),
            flogic_lite::chase::ChaseOutcome::Exhausted {
                reason: ExhaustReason::Deadline
            }
        ),
        "{:?}",
        chase.outcome()
    );
    // The partial chase is still a usable object: the body conjuncts made
    // it in before the first checkpoint.
    assert!(chase.len() >= q.size());
}

#[test]
fn step_budgets_grow_monotone_partial_chases() {
    // More budget can only mean more progress: the materialized prefix
    // (conjuncts, levels, steps examined) is monotone in the step cap,
    // and each smaller prefix is literally a prefix of the larger run.
    let q = pump_query();
    let run = |max_steps: u64| {
        chase_bounded(
            &q,
            &ChaseOptions {
                // Deep enough that every step cap below fires first.
                level_bound: 1_000_000,
                max_conjuncts: 1_000_000,
                budget: Budget::unlimited().steps(max_steps),
                ..Default::default()
            },
        )
        .unwrap()
    };
    let mut prev_len = 0usize;
    let mut prev_steps = 0u64;
    let mut prev_level = 0u32;
    for cap in [50u64, 200, 800, 3200] {
        let chase = run(cap);
        assert!(chase.is_exhausted(), "the pump outruns {cap} steps");
        assert!(chase.len() >= prev_len, "conjuncts monotone in budget");
        assert!(chase.stats().steps >= prev_steps, "steps monotone");
        assert!(chase.max_level() >= prev_level, "levels monotone");
        prev_len = chase.len();
        prev_steps = chase.stats().steps;
        prev_level = chase.max_level();
    }
    assert!(prev_len > pump_query().size(), "largest run made progress");
}

#[test]
fn cancellation_stops_a_long_chase_promptly() {
    let q = pump_query();
    let token = CancelToken::new();
    let handle = {
        let q = q.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            chase_bounded(
                &q,
                &ChaseOptions {
                    // The pump never terminates on its own at this depth;
                    // the deadline is a backstop so a broken cancel path
                    // fails the test instead of hanging CI.
                    level_bound: u32::MAX,
                    max_conjuncts: usize::MAX,
                    budget: Budget::with_timeout(Duration::from_secs(120)).cancelled_by(token),
                    ..Default::default()
                },
            )
            .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    token.cancel();
    let chase = handle.join().expect("no panic in the governed chase");
    // The cancel is observed at the next checkpoint (round boundary or
    // 1024-candidate tick), i.e. promptly — not after thousands of levels.
    assert!(
        matches!(
            chase.outcome(),
            flogic_lite::chase::ChaseOutcome::Exhausted {
                reason: ExhaustReason::Cancelled
            }
        ),
        "{:?}",
        chase.outcome()
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "cancellation must take effect promptly"
    );
}

#[test]
fn tiny_budget_on_heavy_pair_returns_exhausted_in_bounded_time() {
    // The acceptance scenario: a pair whose decision would blow the budget
    // must come back quickly as an *outcome*, with partial statistics.
    let q1 = pump_query();
    let q2 = parse_query("qq() :- data(T, A, V), member(V, T).").unwrap();
    let t0 = Instant::now();
    let r = contains_with(
        &q1,
        &q2,
        &ContainmentOptions {
            max_conjuncts: 20,
            analysis: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(t0.elapsed() < Duration::from_secs(10));
    assert_eq!(r.verdict(), Verdict::Exhausted(ExhaustReason::Conjuncts));
    assert!(!r.holds(), "exhausted must never read as holds");
    assert!(r.chase_conjuncts() > 0, "partial stats are reported");
    assert!(r.witness().is_none());
}

#[test]
fn unhit_budget_is_invisible() {
    // A generous budget must not change anything observable about the
    // decision relative to no budget at all.
    let q1 = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].").unwrap();
    let q2 = parse_query("qq(A,B) :- T1[A*=>T2], T2[B*=>_].").unwrap();
    let free = contains_with(&q1, &q2, &ContainmentOptions::default()).unwrap();
    let governed = contains_with(
        &q1,
        &q2,
        &ContainmentOptions {
            budget: Budget::with_timeout(Duration::from_secs(600))
                .steps(u64::MAX)
                .bytes(usize::MAX),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(free.verdict(), governed.verdict());
    assert_eq!(free.chase_conjuncts(), governed.chase_conjuncts());
    assert_eq!(free.max_chase_level(), governed.max_chase_level());
    assert_eq!(free.witness().is_some(), governed.witness().is_some());
}

#[test]
fn byte_budget_exhausts_the_pump() {
    let q = pump_query();
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: 1_000_000,
            max_conjuncts: 1_000_000,
            budget: Budget::unlimited().bytes(64 * 1024),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        matches!(
            chase.outcome(),
            flogic_lite::chase::ChaseOutcome::Exhausted {
                reason: ExhaustReason::Bytes
            }
        ),
        "{:?}",
        chase.outcome()
    );
    assert!(chase.approx_bytes() >= 64 * 1024);
}
