//! Crash-recovery behaviour of the durable decision store, exercised
//! through the public API: torn WAL tails, manifest fencing under
//! duplicate generations, segment corruption quarantine, and the
//! replay(WAL) ∘ flush ≡ memtable-state property.
//!
//! The corresponding unit tests live inside `flogic-store`; these
//! versions stage each failure the way an actual crash would leave it
//! on disk — by writing bytes, not by calling internals.

use std::io::Write;
use std::path::PathBuf;

use flogic_lite::store::{
    manifest::{self, Manifest, SegmentEntry},
    segment::{segment_file_name, write_segment},
    Store, StoreOptions,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flq_recovery_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn k(i: u64) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

fn v(i: u64) -> Vec<u8> {
    format!("value-{i:06}").into_bytes()
}

/// A deterministic pseudo-random sequence (SplitMix64) — no external
/// RNG, no wall clock.
fn rng(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn kill_mid_wal_append_recovers_the_valid_prefix() {
    let dir = tmp("torn");
    {
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..50 {
            store.put(&k(i), &v(i)).unwrap();
        }
        // No flush: everything lives in the WAL. Dropping the store is
        // the "kill" — nothing else is written.
    }
    // The crash happened mid-append: the WAL ends in a half-written
    // frame (a length header promising more bytes than exist).
    let wal_path = dir.join("wal.flqw");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .unwrap();
    f.write_all(&1000u32.to_le_bytes()).unwrap();
    f.write_all(&[0xAB; 17]).unwrap();
    drop(f);
    let torn_len = std::fs::metadata(&wal_path).unwrap().len();

    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.wal_replayed, 50, "valid prefix replays fully");
    assert!(stats.wal_torn_bytes > 0, "torn tail is counted");
    assert!(
        store.stats().wal_bytes < torn_len,
        "the torn tail was truncated away"
    );
    for i in 0..50 {
        assert_eq!(store.get(&k(i)).unwrap().as_deref(), Some(&v(i)[..]));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_generations_fence_to_the_newest_and_quarantine_the_loser() {
    let dir = tmp("fence");
    std::fs::create_dir_all(&dir).unwrap();
    // Two segment files, written as a crashed writer racing a rename
    // would leave them: both claim generation 1 in the manifest. The
    // later-listed entry is the newer write and must win.
    let old_entries = [(k(0), v(0))];
    let new_entries = [(k(0), b"newer".to_vec()), (k(1), v(1))];
    write_segment(
        &dir,
        1,
        old_entries
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice())),
    )
    .unwrap();
    let loser = "seg-crashed-epoch.flqs";
    std::fs::rename(dir.join(segment_file_name(1)), dir.join(loser)).unwrap();
    write_segment(
        &dir,
        1,
        new_entries
            .iter()
            .map(|(a, b)| (a.as_slice(), b.as_slice())),
    )
    .unwrap();
    manifest::store(
        &dir,
        &Manifest {
            generation: 1,
            segments: vec![
                SegmentEntry {
                    name: loser.to_string(),
                    gen: 1,
                    entries: 1,
                },
                SegmentEntry {
                    name: segment_file_name(1),
                    gen: 1,
                    entries: 2,
                },
            ],
        },
    )
    .unwrap();

    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        store.stats().segments,
        1,
        "one generation-1 claimant survives"
    );
    assert!(
        store.stats().quarantined >= 1,
        "the fenced loser is quarantined"
    );
    assert_eq!(store.get(&k(0)).unwrap().as_deref(), Some(&b"newer"[..]));
    assert_eq!(store.get(&k(1)).unwrap().as_deref(), Some(&v(1)[..]));
    assert!(
        !dir.join(loser).exists(),
        "the losing file is moved, not live"
    );
    assert!(
        dir.join(format!("{loser}.quarantined")).exists(),
        "…and preserved under .quarantined, not deleted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segment_metadata_corruption_quarantines_without_losing_the_rest() {
    let dir = tmp("crc");
    let name;
    {
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..20 {
            store.put(&k(i), &v(i)).unwrap();
        }
        store.flush().unwrap();
        for i in 20..40 {
            store.put(&k(i), &v(i)).unwrap();
        }
        store.flush().unwrap();
        let rows = store.segment_rows();
        assert_eq!(rows.len(), 2);
        name = rows.last().unwrap().0.clone();
    }
    // Flip one byte near the end of the older segment (index/footer
    // region — the part `open` checksums).
    let path = dir.join(&name);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() - 30;
    bytes[at] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(store.stats().segments, 1, "the corrupt segment is dropped");
    assert!(store.stats().quarantined >= 1);
    assert!(dir.join(format!("{name}.quarantined")).exists());
    // Keys from the healthy segment still answer; keys that lived only
    // in the quarantined one read as misses (recompute, never lie).
    let healthy_hits = (0..40)
        .filter(|&i| store.get(&k(i)).unwrap().is_some())
        .count();
    assert_eq!(healthy_hits, 20);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn data_corruption_is_caught_by_verify() {
    let dir = tmp("verify");
    let name;
    {
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..30 {
            store.put(&k(i), &v(i)).unwrap();
        }
        store.flush().unwrap();
        name = store.segment_rows()[0].0.clone();
        assert!(store.verify().unwrap().is_clean());
    }
    // Flip a byte in the data region: open-time metadata checks pass,
    // the full verify scan must not.
    let path = dir.join(&name);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[40] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let store = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(store.stats().segments, 1, "metadata still checks out");
    let report = store.verify().unwrap();
    assert!(!report.is_clean(), "data CRC mismatch must be reported");
    assert!(report.problems[0].contains(&name), "{:?}", report.problems);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property: for a pseudo-random workload of puts (with overwrites of
/// byte-identical values, as the decision store produces), crashing at
/// an arbitrary point and replaying the WAL yields exactly the state a
/// flush-surviving memtable would have had.
#[test]
fn replay_after_crash_equals_direct_state() {
    for seed in [3u64, 17, 4242] {
        let dir = tmp(&format!("prop{seed}"));
        let mut next = rng(seed);
        let mut model = std::collections::BTreeMap::new();
        {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            for _ in 0..400 {
                let i = next() % 120;
                let key = k(i);
                // Deterministic values: every write of a key carries the
                // same bytes, the invariant the decision store relies on.
                let value = v(i);
                store.put(&key, &value).unwrap();
                model.insert(key, value);
                if next() % 97 == 0 {
                    store.flush().unwrap();
                }
            }
            // Crash: drop without a final flush.
        }
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        for (key, value) in &model {
            assert_eq!(
                store.get(key).unwrap().as_deref(),
                Some(value.as_slice()),
                "seed {seed}: key {:?} lost or wrong after replay",
                String::from_utf8_lossy(key)
            );
        }
        // And nothing invented: a key never written is a miss.
        assert_eq!(store.get(b"never-written").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
