//! Cross-validation of the durable decision tier: a decision served
//! from disk must be indistinguishable — field for field — from the
//! same decision computed fresh, across process boundaries (modeled
//! here as reopened stores and restarted in-process servers).
//!
//! This is the acceptance gate for `flqd --data-dir`: restart-warm
//! serving is only sound if the persisted verdicts are bit-identical
//! to recomputation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use flogic_lite::core::{contains_with, ContainmentOptions, ContainmentResult};
use flogic_lite::prelude::*;
use flogic_lite::serve::{Server, ServerConfig};
use flogic_lite::store::DurableDecisionCache;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flq_xval_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn q(s: &str) -> ConjunctiveQuery {
    parse_query(s).unwrap()
}

/// Every observable field of a decision except the witness (which the
/// codec deliberately drops: it names chase-internal nulls that are
/// meaningless in another process's interner).
fn fields(r: &ContainmentResult) -> (bool, bool, usize, u32, u32, bool) {
    (
        r.holds(),
        r.is_vacuous(),
        r.chase_conjuncts(),
        r.level_bound(),
        r.max_chase_level(),
        r.decided_by_analysis(),
    )
}

/// The pair corpus: containments that hold, fail, hold vacuously, and
/// are decided with and without static analysis.
fn corpus() -> Vec<(ConjunctiveQuery, ConjunctiveQuery, ContainmentOptions)> {
    let plain = ContainmentOptions::default();
    let no_analysis = ContainmentOptions {
        analysis: false,
        ..Default::default()
    };
    vec![
        (
            q("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."),
            q("qq(A,B) :- T1[A*=>T2], T2[B*=>_]."),
            plain.clone(),
        ),
        (
            q("qq(A,B) :- T1[A*=>T2], T2[B*=>_]."),
            q("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."),
            plain.clone(),
        ),
        (
            q("q(X, Z) :- sub(X, Y), sub(Y, Z)."),
            q("p(X, Z) :- sub(X, Z)."),
            plain.clone(),
        ),
        (
            q("q(X, Z) :- sub(X, Y), sub(Y, Z)."),
            q("p(X, Z) :- sub(X, Z)."),
            no_analysis.clone(),
        ),
        (
            q("q() :- mandatory(A, T), type(T, A, T)."),
            q("qq() :- data(T, A, V), member(V, T)."),
            no_analysis,
        ),
    ]
}

#[test]
fn persisted_decisions_are_bit_identical_to_fresh_computation() {
    let dir = tmp("bits");
    let pairs = corpus();
    let fresh: Vec<ContainmentResult> = pairs
        .iter()
        .map(|(q1, q2, opts)| contains_with(q1, q2, opts).unwrap())
        .collect();
    {
        let cache = DurableDecisionCache::open(&dir).unwrap();
        for ((q1, q2, opts), want) in pairs.iter().zip(&fresh) {
            let got = cache.contains_with(q1, q2, opts).unwrap();
            assert_eq!(fields(&got), fields(want), "first computation differs");
        }
        cache.flush().unwrap();
    }
    // "New process": a cold RAM tier over the same dir. Every pair must
    // come back from disk — the compute closure is a bomb.
    let cache = DurableDecisionCache::open(&dir).unwrap();
    for ((q1, q2, opts), want) in pairs.iter().zip(&fresh) {
        let got = cache
            .contains_with_compute(q1, q2, opts, || {
                panic!("decision for {q1} vs {q2} was not served from disk")
            })
            .unwrap();
        assert_eq!(
            fields(&got),
            fields(want),
            "persisted decision for {q1} vs {q2} differs from fresh computation"
        );
    }
    assert_eq!(cache.durable_stats().disk_hits as usize, pairs.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_store_survives_compaction_with_identical_answers() {
    let dir = tmp("compact");
    let pairs = corpus();
    {
        let cache = DurableDecisionCache::open(&dir).unwrap();
        for (q1, q2, opts) in &pairs {
            cache.contains_with(q1, q2, opts).unwrap();
        }
        cache.flush().unwrap();
        // Force a second segment, then squash both.
        let extra = (
            q("r(X) :- member(X, Y)."),
            q("s(X) :- member(X, Y), sub(Y, Y)."),
            ContainmentOptions::default(),
        );
        cache.contains_with(&extra.0, &extra.1, &extra.2).unwrap();
        cache.flush().unwrap();
        let store = cache.store().unwrap();
        assert!(store.stats().segments >= 2);
        store.compact_now().unwrap();
        assert_eq!(store.stats().segments, 1);
    }
    let cache = DurableDecisionCache::open(&dir).unwrap();
    for (q1, q2, opts) in &pairs {
        cache
            .contains_with_compute(q1, q2, opts, || {
                panic!("lost across compaction: {q1} vs {q2}")
            })
            .unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One raw HTTP/1.1 exchange against an in-process server.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("http response");
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

fn start(
    data_dir: &str,
) -> (
    flogic_lite::serve::ServerHandle,
    String,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: Some(data_dir.to_string()),
        ..Default::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, addr, join)
}

#[test]
fn restarted_server_serves_prior_decisions_from_disk() {
    let dir = tmp("server");
    let dir_s = dir.to_str().unwrap().to_string();
    let body = r#"{"q1": "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].", "q2": "qq(A,B) :- T1[A*=>T2], T2[B*=>_]."}"#;
    let warm_answer;
    {
        let (handle, addr, join) = start(&dir_s);
        let (status, answer) = http(&addr, "POST", "/v1/contains", body);
        assert_eq!(status, 200, "{answer}");
        assert!(answer.contains("\"verdict\""), "{answer}");
        warm_answer = answer;
        // Graceful shutdown flushes the memtable (Server::run's contract).
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
    {
        let (handle, addr, join) = start(&dir_s);
        // A renamed respelling of the same pair: the semantic key maps it
        // onto the persisted decision.
        let renamed = r#"{"q1": "zz(U,V) :- S1[U*=>S2], S2::S3, S3[V*=>_].", "q2": "yy(U,V) :- S1[U*=>S2], S2[V*=>_]."}"#;
        let (status, answer) = http(&addr, "POST", "/v1/contains", renamed);
        assert_eq!(status, 200, "{answer}");
        assert_eq!(answer, warm_answer, "disk-warm answer differs from cold");
        let (status, metrics) = http(&addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(
            metrics.contains("flqd_store_disk_hits_total 1"),
            "expected one disk hit in: {}",
            metrics
                .lines()
                .filter(|l| l.contains("flqd_store"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
