//! End-to-end tests of the `flq` command-line tool.

use std::process::Command;

fn flq(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_flq"))
        .args(args)
        .output()
        .expect("flq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Like [`flq`] but returns the raw exit code (0 ok, 1 failure, 2 usage).
fn flq_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_flq"))
        .args(args)
        .output()
        .expect("flq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("flq exits normally"),
    )
}

#[test]
fn contains_reports_paper_example() {
    let (stdout, _, ok) = flq(&[
        "contains",
        "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].",
        "qq(A,B) :- T1[A*=>T2], T2[B*=>_].",
    ]);
    assert!(ok);
    assert!(stdout.contains("q1 ⊆_ΣFL q2:  true"), "{stdout}");
    assert!(stdout.contains("q2 ⊆_ΣFL q1:  false"), "{stdout}");
    assert!(stdout.contains("classically (no Σ_FL):  false"), "{stdout}");
}

#[test]
fn contains_reports_vacuous() {
    let (stdout, _, ok) = flq(&[
        "contains",
        "q() :- data(o, a, 1), data(o, a, 2), funct(a, o).",
        "qq() :- sub(X, Y).",
    ]);
    assert!(ok);
    assert!(stdout.contains("vacuous"), "{stdout}");
}

#[test]
fn chase_prints_levels_and_dot() {
    let (stdout, _, ok) = flq(&[
        "chase",
        "q() :- mandatory(A, T), type(T, A, T).",
        "--bound",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("level 0:"), "{stdout}");
    assert!(stdout.contains("level 1:"), "{stdout}");
    let (dot, _, ok) = flq(&[
        "chase",
        "q() :- mandatory(A, T), type(T, A, T).",
        "--bound",
        "5",
        "--dot",
    ]);
    assert!(ok);
    assert!(dot.starts_with("digraph chase {"), "{dot}");
}

#[test]
fn minimize_shrinks_redundant_query() {
    let (stdout, _, ok) = flq(&["minimize", "q(X) :- X:C, C::D, X:D."]);
    assert!(ok);
    assert!(stdout.contains("input    (3 conjuncts)"), "{stdout}");
    assert!(stdout.contains("minimal  (2 conjuncts)"), "{stdout}");
}

#[test]
fn eval_runs_the_university_program() {
    let (stdout, stderr, ok) = flq(&["eval", "examples/university.fl"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Sigma_FL closure"), "{stdout}");
    // ?- X::person. finds at least student and employee.
    assert!(stdout.contains("(student)"), "{stdout}");
    assert!(stdout.contains("(employee)"), "{stdout}");
    // rho5 invented a name for mary: she appears in the person/name query.
    assert!(stdout.contains("(mary, "), "{stdout}");
    // inherited mandatory attribute for professor (rho9)
    assert!(stdout.contains("(name)"), "{stdout}");
}

#[test]
fn explain_prints_derivation() {
    let (stdout, _, ok) = flq(&[
        "explain",
        "q(X,Z) :- sub(X,Y), sub(Y,Z).",
        "p(X,Z) :- sub(X,Z).",
    ]);
    assert!(ok);
    assert!(stdout.contains("containment holds"), "{stdout}");
    assert!(stdout.contains("rho2"), "{stdout}");
    assert!(stdout.contains("==>"), "{stdout}");
}

#[test]
fn explain_reports_non_containment() {
    let (stdout, _, ok) = flq(&["explain", "q(X) :- member(X, c).", "p(X) :- sub(X, c)."]);
    assert!(ok);
    assert!(stdout.contains("does not hold"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, _, ok) = flq(&["frobnicate"]);
    assert!(!ok);
    let (_, stderr, ok) = flq(&["contains", "not a query", "q() :- sub(X,Y)."]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn unknown_flags_are_usage_errors() {
    for args in [
        &[
            "contains",
            "q() :- sub(X,Y).",
            "p() :- sub(A,B).",
            "--bogus",
        ][..],
        &["explain", "q() :- sub(X,Y).", "p() :- sub(A,B).", "--frob"][..],
        &["chase", "q() :- sub(X,Y).", "--parallel"][..],
        &["lint", "--bogus"][..],
    ] {
        let (_, stderr, code) = flq_code(args);
        assert_eq!(code, 2, "args {args:?}: {stderr}");
        assert!(stderr.contains("unknown"), "args {args:?}: {stderr}");
    }
}

#[test]
fn threads_and_no_analysis_flags_accepted() {
    let q1 = "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].";
    let q2 = "qq(A,B) :- T1[A*=>T2], T2[B*=>_].";
    let (with, _, ok) = flq(&["contains", q1, q2, "--threads", "2"]);
    assert!(ok);
    let (without, _, ok) = flq(&["contains", q1, q2, "--no-analysis"]);
    assert!(ok);
    // Same verdicts either way (the analysis toggle never changes them).
    for line in ["q1 ⊆_ΣFL q2:  true", "q2 ⊆_ΣFL q1:  false"] {
        assert!(with.contains(line), "{with}");
        assert!(without.contains(line), "{without}");
    }
    let (_, _, ok) = flq(&["chase", "q() :- sub(X,Y).", "--threads", "2"]);
    assert!(ok);
}

#[test]
fn exhaustion_exits_with_code_three() {
    // A pair whose chase pumps past 5 conjuncts: the cap makes the run
    // exhausted, which is a distinct exit code (3), not failure (1).
    let q1 = "q() :- mandatory(A, T), type(T, A, T).";
    let q2 = "qq() :- data(T, A, V), member(V, T).";
    let (stdout, _, code) =
        flq_code(&["contains", q1, q2, "--max-conjuncts", "5", "--no-analysis"]);
    assert_eq!(code, 3, "{stdout}");
    assert!(stdout.contains("EXHAUSTED"), "{stdout}");
    assert!(stdout.contains("conjunct cap"), "{stdout}");

    // An already-elapsed deadline exhausts before the first chase round.
    let (stdout, _, code) = flq_code(&["contains", q1, q2, "--timeout", "0", "--no-analysis"]);
    assert_eq!(code, 3, "{stdout}");
    assert!(stdout.contains("deadline"), "{stdout}");

    // Same on the chase subcommand: a prefix is printed, exit is 3.
    let (stdout, stderr, code) = flq_code(&["chase", q1, "--timeout", "0"]);
    assert_eq!(code, 3, "{stdout}{stderr}");
    assert!(stderr.contains("EXHAUSTED"), "{stderr}");

    // A generous budget decides normally: flags alone don't change exits.
    let (_, _, code) = flq_code(&["contains", q1, q2, "--timeout", "60000"]);
    assert_eq!(code, 0);
}

#[test]
fn budget_flags_reject_garbage() {
    let q = "q() :- sub(X,Y).";
    let (_, stderr, code) = flq_code(&["contains", q, q, "--timeout", "soon"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--timeout"), "{stderr}");
    let (_, stderr, code) = flq_code(&["contains", q, q, "--max-conjuncts"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--max-conjuncts"), "{stderr}");
}

#[test]
fn contains_reports_static_decision() {
    // q1 only reaches sub; q2 needs data: decided without a chase.
    let (stdout, _, ok) = flq(&["contains", "q(X) :- sub(X, Y).", "p(X) :- data(X, a, V)."]);
    assert!(ok);
    assert!(stdout.contains("decided statically"), "{stdout}");
    let (stdout, _, ok) = flq(&[
        "contains",
        "q(X) :- sub(X, Y).",
        "p(X) :- data(X, a, V).",
        "--no-analysis",
    ]);
    assert!(ok);
    assert!(!stdout.contains("decided statically"), "{stdout}");
}

#[test]
fn explain_mentions_invention_cycle_and_bound() {
    let (stdout, _, ok) = flq(&["explain", "q(X) :- member(X, c).", "p(X) :- sub(X, c)."]);
    assert!(ok);
    assert!(stdout.contains("value-invention cycle"), "{stdout}");
    assert!(
        stdout.contains("data[2] -> member[0] -> mandatory[1]"),
        "{stdout}"
    );
    assert!(stdout.contains("Theorem 12"), "{stdout}");
}

#[test]
fn lint_clean_file_exits_zero() {
    let (stdout, stderr, code) = flq_code(&["lint", "examples/university.fl"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn lint_dirty_file_lists_coded_diagnostics() {
    let dir = std::env::temp_dir().join("flq_lint_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dirty.fl");
    std::fs::write(
        &path,
        "john:student.\nq(A) :- member(A, student), sub(S, ghost).\n",
    )
    .unwrap();
    let path = path.to_str().unwrap().to_owned();
    let (stdout, stderr, code) = flq_code(&["lint", &path]);
    assert_eq!(code, 1, "{stdout}{stderr}");
    // Singleton S and the undeclared constant `ghost`, with line:col spans.
    assert!(stdout.contains("FL001"), "{stdout}");
    assert!(stdout.contains("FL005"), "{stdout}");
    assert!(stdout.contains(":2:"), "{stdout}");
    assert!(stderr.contains("warning(s)"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_missing_file_fails() {
    let (_, stderr, code) = flq_code(&["lint", "/nonexistent/nope.fl"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error reading"), "{stderr}");
}

#[test]
fn profile_reports_rule_histogram_and_depth_bound() {
    // Example 2 of the paper: the pumping chase exercises rho5 (value
    // invention); the profile must list every Sigma_FL rule including
    // rho4/rho5 and report observed depth against the Theorem 12 bound.
    let (stdout, stderr, ok) = flq(&[
        "profile",
        "q() :- mandatory(A, T), type(T, A, T), sub(T, U).",
        "qq() :- data(T, A, V), member(V, T).",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("q1 ⊆_ΣFL q2:  true"), "{stdout}");
    assert!(stdout.contains("rule firings"), "{stdout}");
    for rule in ["rho1", "rho4", "rho5", "rho12"] {
        assert!(stdout.contains(rule), "missing {rule} row: {stdout}");
    }
    assert!(stdout.contains("(value invention)"), "{stdout}");
    assert!(stdout.contains("level growth:"), "{stdout}");
    assert!(stdout.contains("phase timing:"), "{stdout}");
    assert!(stdout.contains("theorem bound 12"), "{stdout}");
}

#[test]
fn trace_out_writes_parseable_jsonl() {
    let dir = std::env::temp_dir().join("flq_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let path_s = path.to_str().unwrap().to_owned();
    let (_, stderr, ok) = flq(&[
        "contains",
        "q(X,Z) :- sub(X,Y), sub(Y,Z).",
        "p(X,Z) :- sub(X,Z).",
        "--no-analysis",
        "--trace-out",
        &path_s,
    ]);
    assert!(ok, "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    let events = flogic_lite::obs::export::parse_jsonl(&text).expect("trace parses");
    assert!(!events.is_empty(), "a chased containment records events");
    // Per-worker sequence numbers are strictly increasing.
    let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for rec in &events {
        if let Some(prev) = last.insert(rec.worker, rec.seq) {
            assert!(rec.seq > prev, "worker {} seq went backwards", rec.worker);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_on_eval_writes_valid_empty_trace() {
    // `flq eval` never chases a query, so its trace is empty — which must
    // still be a well-formed (zero-line) JSONL file.
    let dir = std::env::temp_dir().join("flq_trace_eval_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.jsonl");
    let path_s = path.to_str().unwrap().to_owned();
    let (_, stderr, ok) = flq(&["eval", "examples/university.fl", "--trace-out", &path_s]);
    assert!(ok, "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    let events = flogic_lite::obs::export::parse_jsonl(&text).expect("empty trace parses");
    assert!(events.is_empty(), "eval records no chase events");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_prints_delta_on_stderr() {
    let (_, stderr, ok) = flq(&[
        "contains",
        "q(X,Z) :- sub(X,Y), sub(Y,Z).",
        "p(X,Z) :- sub(X,Z).",
        "--metrics",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("metrics: chase:"), "{stderr}");
    assert!(stderr.contains("hom:"), "{stderr}");
    // Accepted (and inert) on the file-oriented subcommands too.
    let (_, stderr, ok) = flq(&["lint", "examples/university.fl", "--metrics"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("metrics:"), "{stderr}");
}

#[test]
fn trace_out_without_path_is_usage_error() {
    let (_, stderr, code) = flq_code(&["contains", "q() :- sub(X,Y).", "--trace-out"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--trace-out"), "{stderr}");
}
