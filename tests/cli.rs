//! End-to-end tests of the `flq` command-line tool.

use std::process::Command;

fn flq(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_flq"))
        .args(args)
        .output()
        .expect("flq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn contains_reports_paper_example() {
    let (stdout, _, ok) = flq(&[
        "contains",
        "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].",
        "qq(A,B) :- T1[A*=>T2], T2[B*=>_].",
    ]);
    assert!(ok);
    assert!(stdout.contains("q1 ⊆_ΣFL q2:  true"), "{stdout}");
    assert!(stdout.contains("q2 ⊆_ΣFL q1:  false"), "{stdout}");
    assert!(stdout.contains("classically (no Σ_FL):  false"), "{stdout}");
}

#[test]
fn contains_reports_vacuous() {
    let (stdout, _, ok) = flq(&[
        "contains",
        "q() :- data(o, a, 1), data(o, a, 2), funct(a, o).",
        "qq() :- sub(X, Y).",
    ]);
    assert!(ok);
    assert!(stdout.contains("vacuous"), "{stdout}");
}

#[test]
fn chase_prints_levels_and_dot() {
    let (stdout, _, ok) = flq(&[
        "chase",
        "q() :- mandatory(A, T), type(T, A, T).",
        "--bound",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("level 0:"), "{stdout}");
    assert!(stdout.contains("level 1:"), "{stdout}");
    let (dot, _, ok) = flq(&[
        "chase",
        "q() :- mandatory(A, T), type(T, A, T).",
        "--bound",
        "5",
        "--dot",
    ]);
    assert!(ok);
    assert!(dot.starts_with("digraph chase {"), "{dot}");
}

#[test]
fn minimize_shrinks_redundant_query() {
    let (stdout, _, ok) = flq(&["minimize", "q(X) :- X:C, C::D, X:D."]);
    assert!(ok);
    assert!(stdout.contains("input    (3 conjuncts)"), "{stdout}");
    assert!(stdout.contains("minimal  (2 conjuncts)"), "{stdout}");
}

#[test]
fn eval_runs_the_university_program() {
    let (stdout, stderr, ok) = flq(&["eval", "examples/university.fl"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Sigma_FL closure"), "{stdout}");
    // ?- X::person. finds at least student and employee.
    assert!(stdout.contains("(student)"), "{stdout}");
    assert!(stdout.contains("(employee)"), "{stdout}");
    // rho5 invented a name for mary: she appears in the person/name query.
    assert!(stdout.contains("(mary, "), "{stdout}");
    // inherited mandatory attribute for professor (rho9)
    assert!(stdout.contains("(name)"), "{stdout}");
}

#[test]
fn explain_prints_derivation() {
    let (stdout, _, ok) = flq(&[
        "explain",
        "q(X,Z) :- sub(X,Y), sub(Y,Z).",
        "p(X,Z) :- sub(X,Z).",
    ]);
    assert!(ok);
    assert!(stdout.contains("containment holds"), "{stdout}");
    assert!(stdout.contains("rho2"), "{stdout}");
    assert!(stdout.contains("==>"), "{stdout}");
}

#[test]
fn explain_reports_non_containment() {
    let (stdout, _, ok) = flq(&["explain", "q(X) :- member(X, c).", "p(X) :- sub(X, c)."]);
    assert!(ok);
    assert!(stdout.contains("does not hold"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, _, ok) = flq(&["frobnicate"]);
    assert!(!ok);
    let (_, stderr, ok) = flq(&["contains", "not a query", "q() :- sub(X,Y)."]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}
