//! Larger end-to-end scenarios: realistic ontologies exercised through the
//! full stack (parse → close → query → containment/minimise/union).

use flogic_lite::core::{contained_in_union, contains, equivalent, minimize, ContainmentOptions};
use flogic_lite::datalog::{answers, close_database, ClosureOptions, DatalogError};
use flogic_lite::prelude::*;

fn close(db: &Database) -> Database {
    close_database(db, &ClosureOptions::default())
        .expect("closes finitely")
        .0
}

// ---------------------------------------------------------------------------
// An e-commerce catalogue ontology.
// ---------------------------------------------------------------------------

fn catalogue() -> Database {
    parse_database(
        "% taxonomy
         book::product. ebook::book. hardcover::book. gadget::product.
         % schema
         product[price {1:*} *=> money].
         product[sku {0:1} *=> string].
         ebook[format *=> string].
         % items
         dune:hardcover. neuromancer_e:ebook. widget:gadget.
         dune[price -> p20, sku -> sku1].
         neuromancer_e[price -> p10, format -> epub].
         widget[price -> p5].
         p20:money. p10:money. p5:money. sku1:string. epub:string.",
    )
    .expect("catalogue parses")
}

#[test]
fn closure_inherits_schema_down_the_taxonomy() {
    let kb = close(&catalogue());
    // price is mandatory for every product, including the items (ρ9, ρ10).
    let q = parse_goal("?- mandatory(price, ebook).").unwrap();
    assert!(!answers(&q, &kb).is_empty());
    let q = parse_goal("?- mandatory(price, dune).").unwrap();
    assert!(!answers(&q, &kb).is_empty());
    // sku is functional on items (ρ11, ρ12).
    let q = parse_goal("?- funct(sku, widget).").unwrap();
    assert!(!answers(&q, &kb).is_empty());
}

#[test]
fn closure_types_invented_values() {
    let kb = close(&catalogue());
    // widget has no asserted sku; sku is optional so none is invented,
    // but price is mandatory and widget has one. All prices are money (ρ1).
    let q = parse_goal("?- data(widget, price, V), member(V, money).").unwrap();
    assert!(!answers(&q, &kb).is_empty());
    // Every product object ends up with *some* price value.
    let q = parse_query("q(P) :- member(P, product), data(P, price, V).").unwrap();
    let priced = answers(&q, &kb);
    for item in ["dune", "neuromancer_e", "widget"] {
        assert!(
            priced.contains(&vec![Term::constant(item)]),
            "{item} unpriced"
        );
    }
}

#[test]
fn inconsistent_catalogue_detected() {
    let mut db = catalogue();
    // Second sku for dune violates the inherited funct(sku, dune).
    db.insert(Atom::data(
        Term::constant("dune"),
        Term::constant("sku"),
        Term::constant("sku2"),
    ))
    .unwrap();
    let err = close_database(&db, &ClosureOptions::default()).unwrap_err();
    assert!(matches!(err, DatalogError::Inconsistent { .. }));
}

// ---------------------------------------------------------------------------
// Containment-driven view maintenance.
// ---------------------------------------------------------------------------

#[test]
fn view_subsumption_under_the_catalogue_semantics() {
    // View 1: priced books (via the taxonomy hop).
    let v1 = parse_query("v1(X) :- X:B, B::book, X[price->P].").unwrap();
    // View 2: priced products — should subsume v1 *given* book::product?
    // No: sub(B, book) does not entail member(X, product) without the
    // book::product edge, which is data, not Σ_FL. So the correct general
    // view quantifies the class.
    let v2 = parse_query("v2(X) :- X:C, X[price->P].").unwrap();
    assert!(contains(&v1, &v2).unwrap().holds(), "v1 is subsumed by v2");
    assert!(!contains(&v2, &v1).unwrap().holds());
}

#[test]
fn equivalent_view_formulations() {
    // Explicit inheritance vs implied inheritance.
    let a = parse_query("a(X, T) :- X:C, C[att*=>T], X[att*=>T].").unwrap();
    let b = parse_query("b(X, T) :- X:C, C[att*=>T].").unwrap();
    assert!(
        equivalent(&a, &b).unwrap(),
        "the inherited type atom is redundant"
    );
    let min = minimize(&a).unwrap();
    assert_eq!(min.size(), 2);
}

// ---------------------------------------------------------------------------
// Union containment for service routing.
// ---------------------------------------------------------------------------

#[test]
fn request_routed_to_some_backend() {
    // A request for objects with a mandatory, typed attribute.
    let request = parse_query("r(O) :- O:C, C[att {1:*} *=> t].").unwrap();
    // Backends advertise by shape; the second one matches because the
    // chase invents the mandatory value (ρ10 + ρ5).
    let backends = [
        parse_query("b0(O) :- O[other->V].").unwrap(),
        parse_query("b1(O) :- O[att->V].").unwrap(),
        parse_query("b2(O) :- sub(O, O).").unwrap(),
    ];
    let idx = contained_in_union(&request, &backends, &ContainmentOptions::default()).unwrap();
    assert_eq!(idx, Some(1));
}

#[test]
fn unroutable_request_reports_none() {
    let request = parse_query("r(O) :- O:C.").unwrap();
    let backends = [
        parse_query("b0(O) :- O[a->V].").unwrap(),
        parse_query("b1(O) :- sub(O, X).").unwrap(),
    ];
    assert_eq!(
        contained_in_union(&request, &backends, &ContainmentOptions::default()).unwrap(),
        None
    );
}

// ---------------------------------------------------------------------------
// Meta-circularity: classes as objects.
// ---------------------------------------------------------------------------

#[test]
fn classes_as_objects_roundtrip() {
    // The paper: "student:class is correct. (It does not follow that
    // john:class …)".
    let db = parse_database("john:student. student:class. person:class. student::person.")
        .expect("parses");
    let kb = close(&db);
    let classes = answers(&parse_goal("?- X:class.").unwrap(), &kb);
    assert!(classes.contains(&vec![Term::constant("student")]));
    assert!(classes.contains(&vec![Term::constant("person")]));
    // john is NOT a member of class `class` — membership does not leak
    // through the instance-of edge.
    assert!(!classes.contains(&vec![Term::constant("john")]));
    // And `student` is not a *subclass* of class.
    let subs = answers(&parse_goal("?- X::class.").unwrap(), &kb);
    assert!(!subs.contains(&vec![Term::constant("student")]));
}

#[test]
fn attributes_of_attributes() {
    // Attributes are objects too: annotate an attribute with provenance.
    let db = parse_database(
        "age:attribute. attribute[source *=> system].
         age[source -> hr_feed]. hr_feed:system.",
    )
    .expect("parses");
    let kb = close(&db);
    // type is inherited from `attribute` to its member `age` (ρ6); the
    // value hr_feed is then correctly typed (ρ1 was satisfied by data).
    let q = parse_goal("?- type(age, source, system).").unwrap();
    assert!(!answers(&q, &kb).is_empty());
}
