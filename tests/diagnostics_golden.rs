//! Golden-message tests for the analyzer's coded diagnostics.
//!
//! Each test pins the *exact* rendered diagnostic — `line:col`,
//! severity, code, and the full message text — so any drift in spans or
//! wording is caught, not just the code. The CLI-level tests additionally
//! pin the `flq lint --json` JSONL shape byte for byte.

use std::process::Command;

use flogic_lite::analysis::{admit_sigma, lint_source};

/// Renders every diagnostic of `src` the way `flq lint` prints it
/// (minus the path prefix).
fn lint_golden(src: &str) -> Vec<String> {
    lint_source(src)
        .expect("source parses")
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// Renders every admission diagnostic of a `.sigma` source.
fn sigma_golden(src: &str) -> Vec<String> {
    admit_sigma(src, "test.sigma")
        .expect("sigma parses")
        .diagnostics()
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn fl001_singleton_variable() {
    assert_eq!(
        lint_golden("q(X, Y) :- X:c.\n"),
        [
            "1:6: warning[FL001]: variable `Y` occurs only once in `q`; \
          prefix it with `_` (or use `_`) if that is intentional"
        ]
    );
}

#[test]
fn fl002_anonymous_in_head() {
    assert_eq!(
        lint_golden("q(_) :- X:c, X:d.\n"),
        [
            "1:3: error[FL002]: anonymous `_` in the head of `q`: each `_` is a \
          fresh variable, so the head cannot be bound by the body"
        ]
    );
}

#[test]
fn fl003_conflicting_cardinality() {
    assert_eq!(
        lint_golden("c[a {0:1} *=> t].\nc[a {1:*} *=> t].\n"),
        [
            "2:3: warning[FL003]: attribute `a` on `c` is declared both {0:1} and \
          {1:*}; together they mean \"exactly one value\", which is usually a \
          redeclaration mistake"
        ]
    );
}

#[test]
fn fl004_duplicate_declaration() {
    assert_eq!(
        lint_golden("john : student.\njohn : student.\n"),
        [
            "2:1: warning[FL004]: `john : student` is already declared; \
          this repetition is redundant"
        ]
    );
}

#[test]
fn fl005_undeclared_reference() {
    assert_eq!(
        lint_golden("john : student.\n?- X : teacher.\n"),
        ["2:4: warning[FL005]: `teacher` is not declared by any fact in this program"]
    );
}

#[test]
fn fl006_shadowed_signature() {
    assert_eq!(
        lint_golden("c[a *=> t].\nc[a *=> s].\n"),
        [
            "2:3: warning[FL006]: signature `c[a *=> s]` shadows the earlier \
          declaration with type `t`"
        ]
    );
}

#[test]
fn fl007_dead_query_atom() {
    // The same span carries FL005 (constant `a` undeclared) and FL007
    // (no `data` atom derivable); sorting is by position, then code.
    assert_eq!(
        lint_golden("john : student.\n?- X[a -> V].\n"),
        [
            "2:6: warning[FL005]: `a` is not declared by any fact in this program".to_string(),
            "2:6: warning[FL007]: no `data` atom is derivable from the facts \
             (Σ_FL dependency graph): this atom can never be satisfied, so the \
             query is statically empty"
                .to_string(),
        ]
    );
}

#[test]
fn fl010_unknown_predicate_and_arity() {
    assert_eq!(
        sigma_golden("foo(X, Y) :- member(X, Y).\nmember(X) :- sub(X, Y).\n"),
        [
            "1:1: error[FL010]: unknown predicate `foo`; the P_FL schema is \
             member/2, sub/2, data/3, type/3, mandatory/2, funct/2"
                .to_string(),
            "2:1: error[FL010]: predicate `member` takes 2 arguments, got 1".to_string(),
        ]
    );
}

#[test]
fn fl011_unsafe_rules() {
    assert_eq!(
        sigma_golden("X = c :- sub(X, Y).\ndata(O, A, V) :- sub(W, W1).\n"),
        [
            "1:5: error[FL011]: EGD side `c` must be a variable occurring in the body".to_string(),
            "2:1: error[FL011]: rule has 3 existentially quantified head variables \
             (`O`, `A`, `V`); at most one is supported"
                .to_string(),
        ]
    );
}

#[test]
fn fl012_fl013_fl014_on_a_rejected_set() {
    // The example set that fails all three chase-termination classes.
    let src = "data(O, A, V) :- member(O, C), type(C, A, T).\n\
               member(V, C) :- data(O, A, V), type(O, A, C).\n\
               type(V, A, T) :- member(V, T), mandatory(A, T).\n";
    assert_eq!(
        sigma_golden(src),
        [
            "1:1: warning[FL012]: value-invention cycle data[2] → member[0] \
             (closed by rule r1): the chase may invent unboundedly many nulls"
                .to_string(),
            "1:1: warning[FL012]: value-invention cycle data[2] → member[0] → type[0] \
             (closed by rule r1): the chase may invent unboundedly many nulls"
                .to_string(),
            "1:25: warning[FL013]: existential rule r1 has no body atom covering \
             its frontier variables `O`, `A`; `O` is left unguarded"
                .to_string(),
            "1:28: warning[FL014]: marked variable `C` occurs more than once in \
             the body of rule r1: derivations do not stick"
                .to_string(),
            "2:22: warning[FL014]: marked variable `O` occurs more than once in \
             the body of rule r2: derivations do not stick"
                .to_string(),
            "3:28: warning[FL014]: marked variable `T` occurs more than once in \
             the body of rule r3: derivations do not stick"
                .to_string(),
        ]
    );
}

// --- CLI level: `flq lint --json` golden ---------------------------------

fn flq(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_flq"))
        .args(args)
        .output()
        .expect("flq binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("flq exits normally"),
    )
}

/// Writes `content` to a unique temp file and returns its path.
fn temp_file(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("flq-golden-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("temp file writes");
    path
}

#[test]
fn lint_json_is_golden_jsonl() {
    let path = temp_file("json.fl", "john : student.\n?- X[a -> V].\n");
    let p = path.to_str().unwrap();
    let (stdout, stderr, code) = flq(&["lint", p, "--json"]);
    assert_eq!(code, 1);
    assert_eq!(
        stdout,
        format!(
            "{{\"code\":\"FL005\",\"severity\":\"warning\",\"line\":2,\"col\":6,\
             \"message\":\"`a` is not declared by any fact in this program\",\
             \"path\":\"{p}\"}}\n\
             {{\"code\":\"FL007\",\"severity\":\"warning\",\"line\":2,\"col\":6,\
             \"message\":\"no `data` atom is derivable from the facts (Σ_FL \
             dependency graph): this atom can never be satisfied, so the query \
             is statically empty\",\"path\":\"{p}\"}}\n"
        )
    );
    // Every stdout line parses as a flat JSON object (the server's strict
    // parser is the arbiter of what "valid JSON" means in this repo).
    for line in stdout.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    assert_eq!(stderr, format!("{p}: 0 error(s), 2 warning(s)\n"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_json_clean_file_is_empty_output() {
    let path = temp_file("clean.fl", "john : student.\n?- X : student.\n");
    let p = path.to_str().unwrap();
    let (stdout, _, code) = flq(&["lint", p, "--json"]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_sigma_json_passes_unicode_through() {
    // The FL012 message contains `→` arrows and backticks: both must
    // survive the JSON encoding verbatim (JSON allows raw UTF-8).
    let path = temp_file(
        "adm.sigma",
        "data(O, A, V) :- mandatory(A, O).\nmandatory(A, V) :- data(O, A, V).\n",
    );
    let p = path.to_str().unwrap();
    let (stdout, stderr, code) = flq(&["lint", "--sigma", p, "--json"]);
    assert_eq!(code, 0, "guarded set admits: {stderr}");
    assert_eq!(
        stdout,
        format!(
            "{{\"code\":\"FL012\",\"severity\":\"warning\",\"line\":1,\"col\":1,\
             \"message\":\"value-invention cycle data[2] → mandatory[1] (closed \
             by rule r1): the chase may invent unboundedly many nulls\",\
             \"path\":\"{p}\"}}\n"
        )
    );
    assert!(stderr.contains("admitted"), "{stderr}");
    let _ = std::fs::remove_file(&path);
}
