//! Parser and printer edge cases across the whole surface grammar.

use flogic_lite::prelude::*;
use flogic_lite::syntax::{
    atom_to_flogic, parse_ast, parse_queries, query_to_flogic, Pos, SyntaxErrorKind,
};

#[test]
fn whitespace_and_comments_everywhere() {
    let q = parse_query(
        "% leading comment\n  q ( A , B )  :-  % mid comment\n   T1 [ A *=> T2 ] , \n\t T2 :: T3 , T3 [ B *=> _ ] . % trailing",
    )
    .unwrap();
    assert_eq!(q.size(), 3);
}

#[test]
fn numbers_are_constants() {
    let db = parse_database("john[age->33]. 33:number.").unwrap();
    assert!(db.contains(&Atom::member(
        Term::constant("33"),
        Term::constant("number")
    )));
}

#[test]
fn primed_and_underscored_variable_names() {
    let q = parse_query("q(A') :- member(A', _B), sub(_B, C).").unwrap();
    assert_eq!(q.head()[0], Term::var("A'"));
    assert!(q.vars().contains(&Term::var("_B")));
}

#[test]
fn deeply_nested_multi_spec_molecules() {
    let q = parse_query("q(O) :- O[a->V1, b->V2, c {0:1} *=> t, d {1:*} *=> u, e *=> w].").unwrap();
    // a,b data; c: funct+type; d: mandatory+type; e: type.
    assert_eq!(q.size(), 7);
}

#[test]
fn empty_parens_boolean_head() {
    let q = parse_query("q() :- member(X, Y).").unwrap();
    assert_eq!(q.arity(), 0);
}

#[test]
fn multiple_queries_in_one_program() {
    let qs =
        parse_queries("a(X) :- member(X, c).\n b(Y) :- sub(Y, d).\n c() :- funct(k, m).").unwrap();
    assert_eq!(qs.len(), 3);
    assert_eq!(qs[0].name().as_str(), "a");
    assert_eq!(qs[2].arity(), 0);
}

#[test]
fn error_positions_are_accurate() {
    let err = parse_query("q(A) :-\n  member(A, $).").unwrap_err();
    let pos = err.pos.expect("positioned error");
    assert_eq!(pos.line, 2);
    assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedChar('$')));
}

#[test]
fn lexer_error_position_is_exact() {
    // `$` is the 13th column of the second line.
    let err = parse_query("q(A) :-\n  member(A, $).").unwrap_err();
    assert_eq!(err.pos, Some(Pos { line: 2, col: 13 }));
    assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedChar('$')));
}

#[test]
fn parser_error_position_is_exact() {
    // The unexpected `B` (a `,` or `)` was due) sits at line 2, column 12.
    let err = parse_query("q(A) :-\n  member(A B).").unwrap_err();
    assert_eq!(err.pos, Some(Pos { line: 2, col: 12 }));
    assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedToken { .. }));

    // A rejected cardinality is reported at the opening `{` of the spec.
    let err = parse_query("q(A) :-\n  T1[A *=> T2],\n  T2[A {1:1} *=> T3].").unwrap_err();
    assert_eq!(err.pos, Some(Pos { line: 3, col: 8 }));
    assert!(matches!(
        err.kind,
        SyntaxErrorKind::UnsupportedCardinality(_)
    ));
}

#[test]
fn analyzer_diagnostic_positions_are_exact() {
    // The dirty molecule `sub(S, ghost)` starts at line 2, column 29:
    // singleton `S` (FL001), undeclared `ghost` (FL005) and a dead `sub`
    // atom (FL007, nothing derives `sub` from a member-only fact base)
    // are all anchored there.
    let src = "john:student.\nq(A) :- member(A, student), sub(S, ghost).\n";
    let diags = lint_source(src).unwrap();
    let anchor = Pos { line: 2, col: 29 };
    let codes: Vec<(&str, Pos)> = diags.iter().map(|d| (d.code.code(), d.pos)).collect();
    assert_eq!(
        codes,
        vec![("FL001", anchor), ("FL005", anchor), ("FL007", anchor)],
        "{diags:?}"
    );
}

#[test]
fn ast_spans_track_molecules_across_lines() {
    let program = parse_ast("john:student.\n\nq(A) :-\n  member(A, student),\n  A[name -> N].")
        .expect("parses");
    let flogic_lite::syntax::Statement::Query(q) = &program.statements[1] else {
        panic!("second statement is the query");
    };
    assert_eq!(q.pos, Pos { line: 3, col: 1 });
    assert_eq!(q.body[0].pos(), Pos { line: 4, col: 3 });
    assert_eq!(q.body[1].pos(), Pos { line: 5, col: 3 });
}

#[test]
fn reserved_hash_names_rejected() {
    // '#' is the rule-variable namespace and not a legal surface character.
    assert!(parse_query("q(X) :- member(X, #C).").is_err());
}

#[test]
fn keywords_are_not_reserved() {
    // 'member' as a constant (not followed by '(') is a plain identifier.
    let db = parse_database("member:concept.").unwrap();
    assert!(db.contains(&Atom::member(
        Term::constant("member"),
        Term::constant("concept")
    )));
    // 'type' as an attribute name.
    let q = parse_query("q(V) :- john[type->V].").unwrap();
    assert_eq!(q.body()[0].arg(1), Term::constant("type"));
}

#[test]
fn double_dot_is_an_error() {
    assert!(parse_database("john:student..").is_err());
}

#[test]
fn unbalanced_brackets_error() {
    assert!(parse_query("q(A) :- T[A*=>B.").is_err());
    assert!(parse_query("q(A) :- member(A, B.").is_err());
}

#[test]
fn cardinality_variants_accepted_and_rejected() {
    assert!(parse_query("q(A) :- C[A {0:1} *=> t].").is_ok());
    assert!(
        parse_query("q(A) :- C[A {0,1} *=> t].").is_ok(),
        "comma separator"
    );
    assert!(parse_query("q(A) :- C[A {1:1} *=> t].").is_err());
    assert!(parse_query("q(A) :- C[A {0:*} *=> t].").is_err());
}

#[test]
fn flogic_and_predicate_notation_mix_freely() {
    let q = parse_query("q(O, C) :- member(O, C), O[a->V], sub(C, D), D[a*=>t].").unwrap();
    assert_eq!(q.size(), 4);
}

#[test]
fn pretty_printer_round_trips_every_predicate() {
    let q = parse_query(
        "q(O) :- member(O, c), sub(c, d), data(O, a, V), type(c, a, t), \
         mandatory(a, c), funct(b, c).",
    )
    .unwrap();
    let rendered = query_to_flogic(&q);
    let reparsed = parse_query(&rendered).unwrap();
    // mandatory/funct merge with matching type atoms where possible; the
    // reparse is Σ_FL-equivalent (checked in properties.rs); here just
    // check arity/shape survive.
    assert_eq!(reparsed.arity(), 1);
    assert!(reparsed.size() >= 5);
}

#[test]
fn atom_to_flogic_covers_all_predicates() {
    let c = Term::constant;
    let cases = [
        (Atom::member(c("o"), c("k")), "o : k"),
        (Atom::sub(c("a"), c("b")), "a :: b"),
        (Atom::data(c("o"), c("a"), c("v")), "o[a -> v]"),
        (Atom::typ(c("o"), c("a"), c("t")), "o[a *=> t]"),
        (Atom::mandatory(c("a"), c("o")), "o[a {1:*} *=> _]"),
        (Atom::funct(c("a"), c("o")), "o[a {0:1} *=> _]"),
    ];
    for (atom, expected) in cases {
        assert_eq!(atom_to_flogic(&atom), expected);
    }
}

#[test]
fn goal_with_constants_only_has_empty_head() {
    let g = parse_goal("?- member(john, student).").unwrap();
    assert_eq!(g.arity(), 0);
    assert_eq!(g.size(), 1);
}

#[test]
fn long_program_parses() {
    let mut src = String::new();
    for i in 0..200 {
        src.push_str(&format!(
            "c{i}::c{}. o{i}:c{i}. o{i}[a{} -> v{i}].\n",
            i + 1,
            i % 7
        ));
    }
    let db = parse_database(&src).unwrap();
    assert_eq!(db.len(), 600);
}
