//! The parallel chase engine must be observationally identical to the
//! sequential one: same conjuncts, same arcs, same stats, same verdicts,
//! for every thread count. Discovery is fanned out over worker threads but
//! candidates are merged back in frontier order and applied sequentially,
//! so the chase graph never depends on scheduling.
//!
//! Conjunct ids are assigned in insertion order and must agree across runs;
//! the only run-to-run difference is the *global* labelled-null counter, so
//! fingerprints rename nulls by first appearance before comparing.

use std::collections::HashMap;

use flogic_lite::chase::{chase_bounded, chase_minus_with, Chase, ChaseOptions};
use flogic_lite::core::{contains_with, ContainmentOptions, DecisionCache};
use flogic_lite::gen::rng::SplitMix64;
use flogic_lite::gen::{generalize, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_lite::prelude::*;
use flogic_lite::term::Term;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Scheduling-independent rendering of a chase: conjuncts (id, atom, level),
/// arcs (from, to, rule, cross) and summary stats, with labelled nulls
/// renamed to their first-appearance index.
fn fingerprint(chase: &Chase) -> Vec<String> {
    let mut null_names: HashMap<Term, usize> = HashMap::new();
    let mut rename = |t: Term| -> String {
        if let Term::Null(_) = t {
            let next = null_names.len();
            let idx = *null_names.entry(t).or_insert(next);
            format!("#null{idx}")
        } else {
            t.to_string()
        }
    };
    let mut out = Vec::new();
    for (id, atom, level) in chase.conjuncts() {
        let args: Vec<String> = atom.args().iter().map(|&t| rename(t)).collect();
        out.push(format!(
            "conjunct {}: {:?}({}) @{level}",
            id.index(),
            atom.pred(),
            args.join(", ")
        ));
    }
    for arc in chase.arcs() {
        out.push(format!(
            "arc {} -> {} [{:?}{}]",
            arc.from.index(),
            arc.to.index(),
            arc.rule,
            if arc.cross { ", cross" } else { "" }
        ));
    }
    let head: Vec<String> = chase.head().iter().map(|&t| rename(t)).collect();
    out.push(format!("head ({})", head.join(", ")));
    out.push(format!("outcome {:?}", chase.outcome()));
    out.push(format!("stats {:?}", chase.stats()));
    out
}

fn assert_identical_chases(label: &str, mut runs: impl FnMut(usize) -> Chase) {
    let baseline = fingerprint(&runs(1));
    for &threads in &THREAD_COUNTS[1..] {
        let fp = fingerprint(&runs(threads));
        assert_eq!(
            baseline, fp,
            "{label}: threads={threads} diverged from threads=1"
        );
    }
}

#[test]
fn example_1_chase_minus_is_thread_count_invariant() {
    // Example 1: rho12 + rho4 rewrite the head; chase⁻ terminates at level 0.
    let q = parse_query("q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).")
        .unwrap();
    assert_identical_chases("example 1", |threads| {
        chase_minus_with(
            &q,
            &ChaseOptions {
                threads,
                ..Default::default()
            },
        )
        .unwrap()
    });
}

#[test]
fn example_2_bounded_chase_is_thread_count_invariant() {
    // Example 2: the infinite chase (Figure 1), cut at level 9 as in E3.
    let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
    assert_identical_chases("example 2", |threads| {
        chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 9,
                max_conjuncts: 100_000,
                threads,
                ..Default::default()
            },
        )
        .unwrap()
    });
}

#[test]
fn generated_chases_are_thread_count_invariant() {
    let cfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    for seed in 0..24u64 {
        let q = random_query(&cfg, &mut SplitMix64::seed_from_u64(seed));
        assert_identical_chases(&format!("seed {seed}"), |threads| {
            chase_bounded(
                &q,
                &ChaseOptions {
                    level_bound: 4,
                    max_conjuncts: 50_000,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }
}

#[test]
fn truncated_chases_are_thread_count_invariant() {
    // Hitting the conjunct cap must also happen at the same point.
    let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
    assert_identical_chases("example 2 truncated", |threads| {
        chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 40,
                max_conjuncts: 60,
                threads,
                ..Default::default()
            },
        )
        .unwrap()
    });
}

#[test]
fn containment_verdicts_are_thread_count_invariant() {
    let cfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let mut compared = 0usize;
    for seed in 0..20u64 {
        let q1 = random_query(&cfg, &mut SplitMix64::seed_from_u64(seed));
        let q2 = generalize(
            &q1,
            &GeneralizeConfig::default(),
            &mut SplitMix64::seed_from_u64(seed + 1000),
        );
        let decide = |threads: usize| {
            contains_with(
                &q1,
                &q2,
                &ContainmentOptions {
                    max_conjuncts: 50_000,
                    threads,
                    ..Default::default()
                },
            )
        };
        let base = decide(1).unwrap();
        if base.is_exhausted() {
            continue; // resource-capped pair
        }
        compared += 1;
        for &threads in &THREAD_COUNTS[1..] {
            let r = decide(threads).expect("worker threads must not fail");
            assert_eq!(
                base.verdict(),
                r.verdict(),
                "seed {seed}, threads {threads}"
            );
            assert_eq!(base.is_vacuous(), r.is_vacuous());
            assert_eq!(base.chase_conjuncts(), r.chase_conjuncts());
            assert_eq!(base.max_chase_level(), r.max_chase_level());
        }
    }
    assert!(compared >= 10, "workload mostly within the resource cap");
}

#[test]
fn generous_budget_verdicts_are_thread_count_invariant() {
    // A budget that is never hit must be invisible: the governed runs are
    // bit-identical to each other across thread counts (its checks are
    // pure reads at deterministic points).
    use flogic_lite::chase::Budget;
    let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
    assert_identical_chases("example 2 under a generous budget", |threads| {
        chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 9,
                max_conjuncts: 100_000,
                threads,
                budget: Budget::with_timeout(std::time::Duration::from_secs(600))
                    .steps(u64::MAX)
                    .bytes(usize::MAX),
                ..Default::default()
            },
        )
        .unwrap()
    });
}

#[test]
fn step_capped_chases_are_thread_count_invariant() {
    // The step cap counts candidate rule instances in the deterministic
    // application order, so even an *exhausted* run stops at the same
    // point for every thread count.
    use flogic_lite::chase::Budget;
    let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
    assert_identical_chases("example 2 step-capped", |threads| {
        chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 40,
                max_conjuncts: 100_000,
                threads,
                budget: Budget::unlimited().steps(300),
                ..Default::default()
            },
        )
        .unwrap()
    });
}

#[test]
fn tracing_leaves_chases_bit_identical() {
    // Tracing only observes: with a tracer attached the chase graph,
    // head, outcome and stats are bit-identical to an untraced run, at
    // every thread count — and the tracer did record something.
    use flogic_lite::obs::{TraceHandle, Tracer};
    let q = parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap();
    for threads in [1usize, 2, 4] {
        let run = |trace: TraceHandle| {
            chase_bounded(
                &q,
                &ChaseOptions {
                    level_bound: 9,
                    max_conjuncts: 100_000,
                    threads,
                    trace,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let off = fingerprint(&run(TraceHandle::Disabled));
        let tracer = Tracer::with_default_capacity();
        let on = fingerprint(&run(TraceHandle::enabled(&tracer)));
        assert_eq!(off, on, "threads={threads}: tracing changed the chase");
        let snap = tracer.snapshot();
        assert!(!snap.events.is_empty(), "tracer saw the traced run");
        assert_eq!(snap.dropped, 0, "default ring holds Example 2 easily");
    }
}

#[test]
fn tracing_leaves_verdicts_bit_identical() {
    // Same for full containment decisions: verdict, vacuity, witness and
    // chase statistics are unchanged by an attached tracer.
    use flogic_lite::obs::{TraceHandle, Tracer};
    let cfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    for seed in 0..8u64 {
        let q1 = random_query(&cfg, &mut SplitMix64::seed_from_u64(seed));
        let q2 = generalize(
            &q1,
            &GeneralizeConfig::default(),
            &mut SplitMix64::seed_from_u64(seed + 2000),
        );
        for threads in [1usize, 2, 4] {
            let decide = |trace: TraceHandle| {
                contains_with(
                    &q1,
                    &q2,
                    &ContainmentOptions {
                        max_conjuncts: 50_000,
                        threads,
                        trace,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let off = decide(TraceHandle::Disabled);
            let tracer = Tracer::with_default_capacity();
            let on = decide(TraceHandle::enabled(&tracer));
            assert_eq!(
                off.verdict(),
                on.verdict(),
                "seed {seed}, threads {threads}: tracing changed the verdict"
            );
            assert_eq!(off.is_vacuous(), on.is_vacuous());
            assert_eq!(off.witness(), on.witness());
            assert_eq!(off.chase_conjuncts(), on.chase_conjuncts());
            assert_eq!(off.max_chase_level(), on.max_chase_level());
            assert_eq!(off.level_bound(), on.level_bound());
        }
    }
}

#[test]
fn renamed_apart_copy_hits_the_decision_cache() {
    // The paper's joinable-attributes pair, re-asked under fresh variable
    // names and a shuffled body: one cache entry answers both.
    let q1 = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].").unwrap();
    let q2 = parse_query("qq(A,B) :- T1[A*=>T2], T2[B*=>_].").unwrap();
    let cache = DecisionCache::new();
    let first = cache.contains(&q1, &q2).unwrap();
    assert!(first.holds());
    assert_eq!(cache.len(), 1);

    let renamed = q2.rename_apart(&q2);
    let second = cache.contains(&q1, &renamed).unwrap();
    assert!(second.holds());
    assert_eq!(cache.len(), 1, "renamed copy must not add an entry");
    // Hits are answered from the memo table: no fresh witness is computed.
    assert!(first.witness().is_some());
    assert!(second.witness().is_none());
}
