//! Raw-socket protocol tests of the `flqd` reactor: HTTP/1.1 framing,
//! keep-alive reuse, pipelining, slow and malformed clients.
//!
//! The cross-validation suite checks *verdicts*; this one checks the
//! *wire*. Every test speaks bytes directly to a real socket — no
//! client library on either side — because the behaviors under test
//! (in-order pipelined responses, partial-write resume, typed refusals,
//! drain with requests still in flight) are exactly the ones a client
//! library would paper over.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use flogic_lite::serve::{Server, ServerConfig, ServerHandle};

/// Starts an in-process server on an ephemeral port.
fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
}

/// A `POST /v1/contains` request whose answer depends on `marker`'s
/// parity — even markers hold, odd ones do not — so a reordered
/// pipeline is visible in the verdicts, not just in response framing.
/// The marker constant also keeps every request body distinct, so the
/// decision cache cannot conflate them.
fn contains_request(marker: usize) -> String {
    let q2 = if marker % 2 == 0 {
        "p(X) :- sub(X, Y)."
    } else {
        "p(X) :- data(X, A, V)."
    };
    let body =
        format!("{{\"q1\":\"q(X) :- sub(X, c{marker}), sub(c{marker}, X).\",\"q2\":\"{q2}\"}}");
    format!(
        "POST /v1/contains HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// The verdict [`contains_request`]`(marker)` must come back with.
fn expected_verdict(marker: usize) -> &'static str {
    if marker % 2 == 0 {
        "\"verdict\":\"holds\""
    } else {
        "\"verdict\":\"not_holds\""
    }
}

/// Reads one `content-length`-framed response; returns status, the
/// lowercased header block, and the body.
fn read_response<R: BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
        headers.push_str(&line);
        headers.push('\n');
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    // More workers than the pipeline is deep, so completions race:
    // whatever order the decisions finish in, responses must come back
    // in request order — visible here because the expected verdict
    // alternates with the request's position.
    let (addr, handle, join) = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let n = 8;
    let burst: String = (0..n).map(contains_request).collect();
    writer.write_all(burst.as_bytes()).unwrap();
    for i in 0..n {
        let (status, headers, body) = read_response(&mut reader);
        assert_eq!(status, 200, "response {i}: {body}");
        assert!(
            body.contains(expected_verdict(i)),
            "response {i} out of order: {body}"
        );
        assert!(
            !headers.contains("connection: close"),
            "response {i} closed a keep-alive pipeline: {headers}"
        );
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn slow_byte_by_byte_requests_still_parse() {
    // A client that dribbles one byte at a time exercises the
    // incremental parser across every possible split point.
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let request = contains_request(1);
    for chunk in request.as_bytes().chunks(1) {
        writer.write_all(chunk).unwrap();
        writer.flush().unwrap();
    }
    let (status, _headers, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_header_block_is_431() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    // A single header far past the 16 KiB head cap. The server refuses
    // without waiting for the head to terminate.
    write!(
        writer,
        "POST /v1/contains HTTP/1.1\r\nx-padding: {}\r\n\r\n",
        "x".repeat(32 * 1024)
    )
    .unwrap();
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 431, "{body}");
    assert!(body.contains("\"code\":\"headers_too_large\""), "{body}");
    assert!(headers.contains("connection: close"), "{headers}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_request_line_is_400_and_closes() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    writer.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");
    assert!(headers.contains("connection: close"), "{headers}");
    // The server closes after the refusal: the next read sees EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "bytes after close: {rest:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn one_connection_serves_many_requests() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let n = 16;
    for i in 0..n {
        write!(writer, "{}", contains_request(i)).unwrap();
        let (status, _headers, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}: {body}");
    }
    // The legacy flat metrics (read over the same connection — request
    // n+1) agree this was a single connection carrying all traffic.
    writer
        .write_all(b"GET /metrics?format=text HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _headers, metrics) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(metrics.contains("flqd_connections_total 1\n"), "{metrics}");
    assert!(
        metrics.contains(&format!("flqd_requests_total {}\n", n + 1)),
        "{metrics}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Golden-shape assertions on the default Prometheus `/metrics` body:
/// every `# TYPE` family has at least one sample, histogram `_bucket`
/// series are cumulative-monotone and end at `le="+Inf"` equal to
/// `_count`, and the stage/endpoint series that just did work are
/// nonzero.
#[test]
fn prometheus_metrics_have_golden_shape() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    write!(writer, "{}", contains_request(0)).unwrap();
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");

    writer
        .write_all(b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, headers, metrics) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        headers.contains("content-type: text/plain; version=0.0.4"),
        "{headers}"
    );

    // Every # TYPE header is followed by at least one sample of its
    // family before the next header.
    let mut current_family: Option<(&str, usize)> = None;
    let mut buckets: Vec<(String, u64)> = Vec::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((family, samples)) = current_family.take() {
                assert!(samples > 0, "family {family} has no samples:\n{metrics}");
            }
            let name = rest.split(' ').next().unwrap();
            current_family = Some((name, 0));
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line:?}"));
        let Some(family) = current_family.as_mut() else {
            panic!("sample before any # TYPE header: {line:?}");
        };
        let base = series.split('{').next().unwrap();
        assert!(
            base.starts_with(family.0),
            "sample {series:?} outside its family {:?}",
            family.0
        );
        family.1 += 1;
        if let Some((labels, _)) = series
            .strip_prefix("flqd_stage_duration_nanoseconds_bucket{")
            .and_then(|r| r.split_once('}'))
        {
            buckets.push((labels.to_string(), value.parse().unwrap()));
        }
    }
    if let Some((family, samples)) = current_family {
        assert!(samples > 0, "family {family} has no samples");
    }

    // Per-stage bucket series are monotone non-decreasing in file order
    // (the exposition renders le ascending within one stage).
    let mut prev: Option<(String, u64)> = None;
    for (labels, cum) in &buckets {
        let stage = labels.split(",le=").next().unwrap().to_string();
        if let Some((prev_stage, prev_cum)) = &prev {
            if *prev_stage == stage {
                assert!(
                    cum >= prev_cum,
                    "bucket series for {stage} not monotone: {prev_cum} -> {cum}"
                );
            }
        }
        prev = Some((stage, *cum));
    }

    // The decide stage just ran once: its +Inf bucket counts it.
    assert!(
        metrics.contains("flqd_stage_duration_nanoseconds_bucket{stage=\"decide\",le=\"+Inf\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains(
            "flqd_request_duration_nanoseconds_bucket{endpoint=\"contains\",le=\"+Inf\"} 1"
        ),
        "{metrics}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `GET /v1/status` returns strict integer-only JSON whose rollup agrees
/// with the requests this connection just made.
#[test]
fn status_endpoint_reports_the_rollup() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    for i in 0..3 {
        write!(writer, "{}", contains_request(i)).unwrap();
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200, "{body}");
    }
    writer
        .write_all(b"GET /v1/status HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(
        headers.contains("content-type: application/json"),
        "{headers}"
    );

    let value = flogic_lite::serve::json::parse(&body).expect("status body parses strictly");
    let root = value.as_obj().expect("status body is an object");
    assert_eq!(
        root.get("requests_total").and_then(|v| v.as_u64()),
        Some(4),
        "{body}"
    );
    assert_eq!(
        root.get("connections_total").and_then(|v| v.as_u64()),
        Some(1),
        "{body}"
    );
    let stages = root
        .get("stages")
        .and_then(|v| v.as_obj())
        .expect("stages object");
    let decide = stages
        .get("decide")
        .and_then(|v| v.as_obj())
        .expect("decide stage");
    assert_eq!(
        decide.get("count").and_then(|v| v.as_u64()),
        Some(3),
        "{body}"
    );
    let cache = root
        .get("cache")
        .and_then(|v| v.as_obj())
        .expect("cache object");
    assert_eq!(
        cache.get("decision_misses").and_then(|v| v.as_u64()),
        Some(3),
        "three cold pairs: {body}"
    );
    let gauges = root
        .get("gauges")
        .and_then(|v| v.as_obj())
        .expect("gauges object");
    assert_eq!(
        gauges.get("open_connections").and_then(|v| v.as_u64()),
        Some(1),
        "{body}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// With `--access-log`, every request emits one JSONL line that parses
/// back with the server's own strict JSON parser and carries the
/// request's identity: endpoint, verdict, cache outcome, stage micros.
#[test]
fn access_log_lines_parse_back() {
    let dir = std::env::temp_dir().join(format!("flqd-proto-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("access.jsonl");
    let (addr, handle, join) = start(ServerConfig {
        access_log: Some(path.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    });
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    write!(writer, "{}", contains_request(0)).unwrap();
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    write!(writer, "{}", contains_request(0)).unwrap();
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    drop(stream);

    // Releasing every handle drops ServerObs, which joins the logger
    // thread — only then is the log file guaranteed complete.
    handle.shutdown();
    join.join().unwrap().unwrap();
    drop(handle);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one line per request: {text:?}");
    for (i, line) in lines.iter().enumerate() {
        let value = flogic_lite::serve::json::parse(line)
            .unwrap_or_else(|e| panic!("line {i} does not parse: {e}: {line}"));
        let obj = value.as_obj().unwrap();
        assert_eq!(
            obj.get("endpoint").and_then(|v| v.as_str()),
            Some("contains")
        );
        assert_eq!(obj.get("status").and_then(|v| v.as_u64()), Some(200));
        assert_eq!(obj.get("verdict").and_then(|v| v.as_str()), Some("holds"));
        let stages = obj.get("stages").and_then(|v| v.as_obj()).unwrap();
        for stage in ["parse_us", "queue_us", "canon_us", "cache_us", "write_us"] {
            assert!(
                stages.contains_key(stage),
                "line {i} missing {stage}: {line}"
            );
        }
        assert!(obj.get("id").and_then(|v| v.as_u64()).is_some(), "{line}");
        assert!(
            obj.get("bytes_in").and_then(|v| v.as_u64()).unwrap() > 0,
            "{line}"
        );
        assert!(
            obj.get("bytes_out").and_then(|v| v.as_u64()).unwrap() > 0,
            "{line}"
        );
    }
    // First request was a cold decision, the identical repeat a cache hit.
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shutdown_serves_the_pipelined_tail_before_closing() {
    // Burst a pipeline of heavyweight batch requests — one worker, each
    // request holding 200 distinct cold pairs, so the tail is
    // guaranteed to still be in flight when drain starts — then shut
    // down before reading anything. Drain must answer every request
    // that was already parsed, mark the final response
    // `connection: close`, and only then close the socket.
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let n = 4;
    let per_request = 200;
    let burst: String = (0..n)
        .map(|r| {
            let pairs: Vec<String> = (0..per_request)
                .map(|j| {
                    let m = r * per_request + j;
                    format!("[\"q(X) :- sub(X, d{m}), sub(d{m}, X).\",\"p(X) :- sub(X, Y).\"]")
                })
                .collect();
            let body = format!("{{\"pairs\":[{}]}}", pairs.join(","));
            format!(
                "POST /v1/contains_batch HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
        })
        .collect();
    writer.write_all(burst.as_bytes()).unwrap();
    // Long enough for the reactor to parse the whole burst, far shorter
    // than the queued decision work (hundreds of cold pairs).
    thread::sleep(Duration::from_millis(20));
    handle.shutdown();

    for i in 0..n {
        let (status, headers, body) = read_response(&mut reader);
        assert!(
            status == 200 || status == 503,
            "response {i}: HTTP {status}: {body}"
        );
        if i == n - 1 {
            assert!(
                headers.contains("connection: close"),
                "last drained response must close: {headers}"
            );
        }
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "bytes after drain close: {rest:?}");
    join.join().unwrap().unwrap();
}
