//! Raw-socket protocol tests of the `flqd` reactor: HTTP/1.1 framing,
//! keep-alive reuse, pipelining, slow and malformed clients.
//!
//! The cross-validation suite checks *verdicts*; this one checks the
//! *wire*. Every test speaks bytes directly to a real socket — no
//! client library on either side — because the behaviors under test
//! (in-order pipelined responses, partial-write resume, typed refusals,
//! drain with requests still in flight) are exactly the ones a client
//! library would paper over.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use flogic_lite::serve::{Server, ServerConfig, ServerHandle};

/// Starts an in-process server on an ephemeral port.
fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
}

/// A `POST /v1/contains` request whose answer depends on `marker`'s
/// parity — even markers hold, odd ones do not — so a reordered
/// pipeline is visible in the verdicts, not just in response framing.
/// The marker constant also keeps every request body distinct, so the
/// decision cache cannot conflate them.
fn contains_request(marker: usize) -> String {
    let q2 = if marker % 2 == 0 {
        "p(X) :- sub(X, Y)."
    } else {
        "p(X) :- data(X, A, V)."
    };
    let body =
        format!("{{\"q1\":\"q(X) :- sub(X, c{marker}), sub(c{marker}, X).\",\"q2\":\"{q2}\"}}");
    format!(
        "POST /v1/contains HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// The verdict [`contains_request`]`(marker)` must come back with.
fn expected_verdict(marker: usize) -> &'static str {
    if marker % 2 == 0 {
        "\"verdict\":\"holds\""
    } else {
        "\"verdict\":\"not_holds\""
    }
}

/// Reads one `content-length`-framed response; returns status, the
/// lowercased header block, and the body.
fn read_response<R: BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
        headers.push_str(&line);
        headers.push('\n');
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    // More workers than the pipeline is deep, so completions race:
    // whatever order the decisions finish in, responses must come back
    // in request order — visible here because the expected verdict
    // alternates with the request's position.
    let (addr, handle, join) = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let n = 8;
    let burst: String = (0..n).map(contains_request).collect();
    writer.write_all(burst.as_bytes()).unwrap();
    for i in 0..n {
        let (status, headers, body) = read_response(&mut reader);
        assert_eq!(status, 200, "response {i}: {body}");
        assert!(
            body.contains(expected_verdict(i)),
            "response {i} out of order: {body}"
        );
        assert!(
            !headers.contains("connection: close"),
            "response {i} closed a keep-alive pipeline: {headers}"
        );
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn slow_byte_by_byte_requests_still_parse() {
    // A client that dribbles one byte at a time exercises the
    // incremental parser across every possible split point.
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let request = contains_request(1);
    for chunk in request.as_bytes().chunks(1) {
        writer.write_all(chunk).unwrap();
        writer.flush().unwrap();
    }
    let (status, _headers, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_header_block_is_431() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    // A single header far past the 16 KiB head cap. The server refuses
    // without waiting for the head to terminate.
    write!(
        writer,
        "POST /v1/contains HTTP/1.1\r\nx-padding: {}\r\n\r\n",
        "x".repeat(32 * 1024)
    )
    .unwrap();
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 431, "{body}");
    assert!(body.contains("\"code\":\"headers_too_large\""), "{body}");
    assert!(headers.contains("connection: close"), "{headers}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_request_line_is_400_and_closes() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    writer.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");
    assert!(headers.contains("connection: close"), "{headers}");
    // The server closes after the refusal: the next read sees EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "bytes after close: {rest:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn one_connection_serves_many_requests() {
    let (addr, handle, join) = start(ServerConfig::default());
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let n = 16;
    for i in 0..n {
        write!(writer, "{}", contains_request(i)).unwrap();
        let (status, _headers, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}: {body}");
    }
    // The metrics (read over the same connection — request n+1) agree
    // this was a single connection carrying all traffic.
    writer
        .write_all(b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _headers, metrics) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(metrics.contains("flqd_connections_total 1\n"), "{metrics}");
    assert!(
        metrics.contains(&format!("flqd_requests_total {}\n", n + 1)),
        "{metrics}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_serves_the_pipelined_tail_before_closing() {
    // Burst a pipeline of heavyweight batch requests — one worker, each
    // request holding 200 distinct cold pairs, so the tail is
    // guaranteed to still be in flight when drain starts — then shut
    // down before reading anything. Drain must answer every request
    // that was already parsed, mark the final response
    // `connection: close`, and only then close the socket.
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let stream = connect(addr);
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);

    let n = 4;
    let per_request = 200;
    let burst: String = (0..n)
        .map(|r| {
            let pairs: Vec<String> = (0..per_request)
                .map(|j| {
                    let m = r * per_request + j;
                    format!("[\"q(X) :- sub(X, d{m}), sub(d{m}, X).\",\"p(X) :- sub(X, Y).\"]")
                })
                .collect();
            let body = format!("{{\"pairs\":[{}]}}", pairs.join(","));
            format!(
                "POST /v1/contains_batch HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
        })
        .collect();
    writer.write_all(burst.as_bytes()).unwrap();
    // Long enough for the reactor to parse the whole burst, far shorter
    // than the queued decision work (hundreds of cold pairs).
    thread::sleep(Duration::from_millis(20));
    handle.shutdown();

    for i in 0..n {
        let (status, headers, body) = read_response(&mut reader);
        assert!(
            status == 200 || status == 503,
            "response {i}: HTTP {status}: {body}"
        );
        if i == n - 1 {
            assert!(
                headers.contains("connection: close"),
                "last drained response must close: {headers}"
            );
        }
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "bytes after drain close: {rest:?}");
    join.join().unwrap().unwrap();
}
