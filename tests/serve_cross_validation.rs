//! Cross-validation of `flqd` against the in-process decision procedure.
//!
//! The server's contract is that a verdict over the wire is *bit-identical*
//! to the verdict `contains_with` computes locally under the same options —
//! including `exhausted` outcomes, which must surface as HTTP 200 payloads
//! rather than errors. This suite drives an in-process [`Server`] with the
//! E4 workload generator (seeded, so failures reproduce) and checks every
//! pair in both the single and the batch endpoint, plus a budget-starved
//! round where most verdicts exhaust.
//!
//! The client here is deliberately primitive (one connection per request,
//! read to EOF): independent of both the server's HTTP code and the bench
//! crate's `wire` client, so a bug in either cannot hide itself.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use flogic_lite::core::{contains_with, ContainmentOptions, Verdict};
use flogic_lite::gen::rng::SplitMix64;
use flogic_lite::gen::{generalize, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_lite::model::ConjunctiveQuery;
use flogic_lite::serve::{Server, ServerConfig, ServerHandle};

fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}

/// Starts an in-process server on an ephemeral port with `workers` workers.
fn start(
    workers: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// One-shot `POST path body`; returns `(status, body)`.
fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .expect("header break")
        .1
        .to_string();
    (status, body)
}

/// Extracts the string value of `"key":"…"` occurrence number `nth`.
fn nth_string_field<'a>(body: &'a str, key: &str, nth: usize) -> Option<&'a str> {
    let marker = format!("\"{key}\":\"");
    let mut rest = body;
    for _ in 0..=nth {
        let at = rest.find(&marker)?;
        rest = &rest[at + marker.len()..];
    }
    rest.split('"').next()
}

/// JSON-quotes a query's surface syntax.
fn quote(q: &ConjunctiveQuery) -> String {
    let text = flogic_lite::syntax::query_to_flogic(q);
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The wire encoding of a local verdict (and, for exhaustion, its reason).
fn wire_verdict(v: Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::NotHolds => "not_holds",
        Verdict::Exhausted(_) => "exhausted",
    }
}

/// A seeded pair corpus covering both E4 arms: generalizations (mostly
/// contained) and independent pairs (mostly not contained).
fn corpus(pairs: usize) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    (0..pairs as u64)
        .map(|i| {
            let q1 = random_query(&qcfg, &mut rng(1_000 + i));
            let q2 = if i % 2 == 0 {
                generalize(&q1, &gcfg, &mut rng(2_000 + i))
            } else {
                random_query(&qcfg, &mut rng(3_000 + i))
            };
            (q1, q2)
        })
        .collect()
}

/// Local ground truth under exactly the options the requests will carry.
fn local_verdicts(
    pairs: &[(ConjunctiveQuery, ConjunctiveQuery)],
    max_conjuncts: usize,
) -> Vec<&'static str> {
    let opts = ContainmentOptions {
        max_conjuncts,
        ..Default::default()
    };
    pairs
        .iter()
        .map(|(q1, q2)| {
            wire_verdict(
                contains_with(q1, q2, &opts)
                    .expect("generated pairs decide without errors")
                    .verdict(),
            )
        })
        .collect()
}

#[test]
fn single_endpoint_verdicts_are_bit_identical() {
    let pairs = corpus(12);
    let expected = local_verdicts(&pairs, 50_000);
    let (addr, handle, join) = start(2);
    for (i, (q1, q2)) in pairs.iter().enumerate() {
        let body = format!(
            "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":50000}}",
            quote(q1),
            quote(q2)
        );
        let (status, resp) = post(addr, "/v1/contains", &body);
        assert_eq!(status, 200, "pair {i}: {resp}");
        let got = nth_string_field(&resp, "verdict", 0).expect("verdict field");
        assert_eq!(got, expected[i], "pair {i}: server vs local, {resp}");
    }
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn batch_endpoint_matches_local_order_and_verdicts() {
    let pairs = corpus(10);
    let expected = local_verdicts(&pairs, 50_000);
    let (addr, handle, join) = start(2);
    let items: Vec<String> = pairs
        .iter()
        .map(|(q1, q2)| format!("[{},{}]", quote(q1), quote(q2)))
        .collect();
    let body = format!(
        "{{\"pairs\":[{}],\"max_conjuncts\":50000}}",
        items.join(",")
    );
    let (status, resp) = post(addr, "/v1/contains_batch", &body);
    assert_eq!(status, 200, "{resp}");
    for (i, want) in expected.iter().enumerate() {
        let got = nth_string_field(&resp, "verdict", i).expect("verdict field");
        assert_eq!(got, *want, "batch slot {i}: {resp}");
    }
    assert!(
        nth_string_field(&resp, "verdict", expected.len()).is_none(),
        "batch answers exactly one verdict per pair: {resp}"
    );
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn starved_budgets_exhaust_identically_over_the_wire() {
    let pairs = corpus(8);
    // A deterministic budget tight enough that real chases cannot finish:
    // `max_conjuncts` is checked against the growing chase, never wall
    // clock, so local and remote exhaust at exactly the same point.
    let expected = local_verdicts(&pairs, 2);
    assert!(
        expected.contains(&"exhausted"),
        "corpus must exercise the exhaustion path: {expected:?}"
    );
    let (addr, handle, join) = start(1);
    for (i, (q1, q2)) in pairs.iter().enumerate() {
        let body = format!(
            "{{\"q1\":{},\"q2\":{},\"max_conjuncts\":2}}",
            quote(q1),
            quote(q2)
        );
        let (status, resp) = post(addr, "/v1/contains", &body);
        assert_eq!(
            status, 200,
            "exhaustion is an outcome, not an error: {resp}"
        );
        let got = nth_string_field(&resp, "verdict", 0).expect("verdict field");
        assert_eq!(got, expected[i], "pair {i}: {resp}");
        if got == "exhausted" {
            let reason = nth_string_field(&resp, "reason", 0).expect("reason field");
            assert_eq!(reason, "conjuncts", "budget kind must round-trip: {resp}");
        }
    }
    handle.shutdown();
    join.join().expect("server thread").expect("clean drain");
}
