//! Property-based tests: the paper's lemmas and the library's invariants,
//! asserted over randomized workloads.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use flogic_lite::chase::{
    chase_bounded, chase_minus, locality_violations, ChaseOptions, ChaseOutcome,
};
use flogic_lite::core::{classic_contains, contains, equivalent, minimize};
use flogic_lite::gen::{generalize, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_lite::hom::classic_core;
use flogic_lite::model::ConjunctiveQuery;
use flogic_lite::syntax::{parse_query, query_to_flogic};

fn arb_query_config() -> impl Strategy<Value = QueryGenConfig> {
    (1usize..6, 1usize..5, 0usize..3, 0usize..3, prop::bool::ANY).prop_map(
        |(n_atoms, n_vars, n_consts, head_arity, with_cycle)| QueryGenConfig {
            n_atoms,
            n_vars,
            n_consts,
            const_prob: 0.3,
            head_arity,
            pred_weights: [3, 3, 2, 3, 2, 1],
            cycle: if with_cycle { Some(1 + n_atoms % 3) } else { None },
        },
    )
}

fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (arb_query_config(), any::<u64>()).prop_map(|(cfg, seed)| {
        random_query(&cfg, &mut StdRng::seed_from_u64(seed))
    })
}

/// Smaller queries for the expensive properties.
fn arb_small_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (1usize..4, any::<u64>()).prop_map(|(n_atoms, seed)| {
        let cfg = QueryGenConfig { n_atoms, n_vars: 3, n_consts: 2, ..Default::default() };
        random_query(&cfg, &mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Containment is reflexive (Theorem 4: the identity homomorphism).
    #[test]
    fn containment_is_reflexive(q in arb_small_query()) {
        prop_assert!(contains(&q, &q).unwrap().holds());
    }

    /// Classic containment implies containment under Σ_FL.
    #[test]
    fn classic_implies_sigma(q1 in arb_small_query(), q2 in arb_small_query()) {
        if q1.arity() == q2.arity() && classic_contains(&q1, &q2).unwrap() {
            prop_assert!(contains(&q1, &q2).unwrap().holds());
        }
    }

    /// Generalization produces a container, and generalizing further
    /// preserves containment (transitivity along the chain).
    #[test]
    fn generalization_chain_is_monotone(q in arb_small_query(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let gcfg = GeneralizeConfig::default();
        let g1 = generalize(&q, &gcfg, &mut StdRng::seed_from_u64(s1));
        let g2 = generalize(&g1, &gcfg, &mut StdRng::seed_from_u64(s2));
        prop_assert!(contains(&q, &g1).unwrap().holds());
        prop_assert!(contains(&g1, &g2).unwrap().holds());
        prop_assert!(contains(&q, &g2).unwrap().holds(), "transitivity failed: {q} vs {g2}");
    }

    /// Lemma 5 (locality) holds on the chase graph of arbitrary queries,
    /// including ones with injected mandatory cycles.
    #[test]
    fn locality_lemma_holds(q in arb_query()) {
        let chase = chase_bounded(&q, &ChaseOptions { level_bound: 8, max_conjuncts: 60_000 });
        if !chase.is_failed() && chase.outcome() != ChaseOutcome::Truncated {
            let violations = locality_violations(&chase);
            prop_assert!(violations.is_empty(), "locality violated on {q}: {violations:?}");
        }
    }

    /// chase⁻ always terminates with every conjunct at level 0 and never
    /// invents values (ρ5 is excluded).
    #[test]
    fn chase_minus_is_level_zero_and_null_free(q in arb_query()) {
        let chase = chase_minus(&q);
        if !chase.is_failed() {
            prop_assert_eq!(chase.outcome(), ChaseOutcome::Completed);
            for (_, atom, level) in chase.conjuncts() {
                prop_assert_eq!(level, 0);
                prop_assert!(atom.args().iter().all(|t| !t.is_null()));
            }
            prop_assert_eq!(chase.stats().nulls_invented, 0);
        }
    }

    /// The chase contains the (merge-rewritten) body of the chased query.
    #[test]
    fn chase_contains_query_body(q in arb_query()) {
        let chase = chase_minus(&q);
        if !chase.is_failed() {
            let merge = chase.merge_map();
            for atom in q.body() {
                let image = atom.apply(merge);
                prop_assert!(chase.find(&image).is_some(),
                    "body atom {atom} (image {image}) missing from chase of {q}");
            }
        }
    }

    /// The bounded chase respects its level bound.
    #[test]
    fn bounded_chase_respects_bound(q in arb_query(), bound in 0u32..6) {
        let chase = chase_bounded(&q, &ChaseOptions { level_bound: bound, max_conjuncts: 60_000 });
        if chase.outcome() != ChaseOutcome::Truncated {
            prop_assert!(chase.max_level() <= bound);
        }
    }

    /// Σ_FL-minimisation preserves Σ_FL-equivalence and never grows.
    #[test]
    fn minimize_preserves_equivalence(q in arb_small_query()) {
        let m = minimize(&q).unwrap();
        prop_assert!(m.size() <= q.size());
        prop_assert!(equivalent(&m, &q).unwrap(), "minimize broke equivalence: {q} vs {m}");
    }

    /// The classic core preserves classic equivalence in both directions.
    #[test]
    fn classic_core_preserves_classic_equivalence(q in arb_small_query()) {
        let c = classic_core(&q);
        prop_assert!(c.size() <= q.size());
        prop_assert!(classic_contains(&q, &c).unwrap());
        prop_assert!(classic_contains(&c, &q).unwrap());
    }

    /// Display → parse round trip: predicate notation is lossless.
    #[test]
    fn predicate_notation_round_trips(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(q.head(), reparsed.head());
        prop_assert_eq!(q.body(), reparsed.body());
    }

    /// F-logic rendering re-parses to a Σ_FL-equivalent query.
    #[test]
    fn flogic_rendering_is_equivalent(q in arb_small_query()) {
        let text = query_to_flogic(&q);
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(q.arity(), reparsed.arity());
        prop_assert!(equivalent(&q, &reparsed).unwrap(),
            "F-logic round trip broke equivalence:\n  {q}\n  {text}\n  {reparsed}");
    }
}
