//! Randomized property tests: the paper's lemmas and the library's
//! invariants, asserted over seeded workloads.
//!
//! Gated behind the off-by-default `fuzz` feature so the default test run
//! stays fast; run with `cargo test --features fuzz`. The randomness comes
//! from the vendored [`SplitMix64`] generator, so every case is
//! reproducible from the printed seed and no registry dependency (such as
//! `proptest`) is needed.

#![cfg(feature = "fuzz")]

use flogic_lite::chase::{
    chase_bounded, chase_minus, locality_violations, ChaseOptions, ChaseOutcome,
};
use flogic_lite::core::{classic_contains, contains, equivalent, minimize};
use flogic_lite::gen::rng::{Rng, SplitMix64};
use flogic_lite::gen::{generalize, random_query, GeneralizeConfig, QueryGenConfig};
use flogic_lite::hom::classic_core;
use flogic_lite::model::ConjunctiveQuery;
use flogic_lite::syntax::{parse_query, query_to_flogic};

const CASES: u64 = 64;

/// Samples a query-generator configuration (the strategy the old proptest
/// suite used, driven by the seeded PRNG instead).
fn arb_query_config(r: &mut SplitMix64) -> QueryGenConfig {
    let n_atoms = r.random_range(1..6);
    QueryGenConfig {
        n_atoms,
        n_vars: r.random_range(1..5),
        n_consts: r.random_range(0..3),
        const_prob: 0.3,
        head_arity: r.random_range(0..3),
        pred_weights: [3, 3, 2, 3, 2, 1],
        cycle: if r.random_bool(0.5) {
            Some(1 + n_atoms % 3)
        } else {
            None
        },
    }
}

fn arb_query(seed: u64) -> ConjunctiveQuery {
    let mut r = SplitMix64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0xA5A5);
    let cfg = arb_query_config(&mut r);
    random_query(&cfg, &mut r)
}

/// Smaller queries for the expensive properties.
fn arb_small_query(seed: u64) -> ConjunctiveQuery {
    let mut r = SplitMix64::seed_from_u64(seed.wrapping_mul(0x517C_C1B7) ^ 0x5A5A);
    let cfg = QueryGenConfig {
        n_atoms: r.random_range(1..4),
        n_vars: 3,
        n_consts: 2,
        ..Default::default()
    };
    random_query(&cfg, &mut r)
}

/// Containment is reflexive (Theorem 4: the identity homomorphism).
#[test]
fn containment_is_reflexive() {
    for seed in 0..CASES {
        let q = arb_small_query(seed);
        assert!(contains(&q, &q).unwrap().holds(), "seed {seed}: {q}");
    }
}

/// Classic containment implies containment under Σ_FL.
#[test]
fn classic_implies_sigma() {
    for seed in 0..CASES {
        let q1 = arb_small_query(seed);
        let q2 = arb_small_query(seed + 7_000);
        if q1.arity() == q2.arity() && classic_contains(&q1, &q2).unwrap() {
            assert!(
                contains(&q1, &q2).unwrap().holds(),
                "seed {seed}: {q1} vs {q2}"
            );
        }
    }
}

/// Generalization produces a container, and generalizing further
/// preserves containment (transitivity along the chain).
#[test]
fn generalization_chain_is_monotone() {
    let gcfg = GeneralizeConfig::default();
    for seed in 0..CASES {
        let q = arb_small_query(seed);
        let g1 = generalize(&q, &gcfg, &mut SplitMix64::seed_from_u64(seed + 100_000));
        let g2 = generalize(&g1, &gcfg, &mut SplitMix64::seed_from_u64(seed + 200_000));
        assert!(contains(&q, &g1).unwrap().holds(), "seed {seed}");
        assert!(contains(&g1, &g2).unwrap().holds(), "seed {seed}");
        assert!(
            contains(&q, &g2).unwrap().holds(),
            "transitivity failed: {q} vs {g2}"
        );
    }
}

/// Lemma 5 (locality) holds on the chase graph of arbitrary queries,
/// including ones with injected mandatory cycles.
#[test]
fn locality_lemma_holds() {
    for seed in 0..CASES {
        let q = arb_query(seed);
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: 8,
                max_conjuncts: 60_000,
                ..Default::default()
            },
        )
        .unwrap();
        if !chase.is_failed() && !chase.is_exhausted() {
            let violations = locality_violations(&chase);
            assert!(
                violations.is_empty(),
                "locality violated on {q}: {violations:?}"
            );
        }
    }
}

/// chase⁻ always terminates with every conjunct at level 0 and never
/// invents values (ρ5 is excluded).
#[test]
fn chase_minus_is_level_zero_and_null_free() {
    for seed in 0..CASES {
        let q = arb_query(seed);
        let chase = chase_minus(&q);
        if !chase.is_failed() {
            assert_eq!(chase.outcome(), ChaseOutcome::Completed, "seed {seed}");
            for (_, atom, level) in chase.conjuncts() {
                assert_eq!(level, 0, "seed {seed}");
                assert!(atom.args().iter().all(|t| !t.is_null()), "seed {seed}");
            }
            assert_eq!(chase.stats().nulls_invented, 0, "seed {seed}");
        }
    }
}

/// The chase contains the (merge-rewritten) body of the chased query.
#[test]
fn chase_contains_query_body() {
    for seed in 0..CASES {
        let q = arb_query(seed);
        let chase = chase_minus(&q);
        if !chase.is_failed() {
            let merge = chase.merge_map();
            for atom in q.body() {
                let image = atom.apply(merge);
                assert!(
                    chase.find(&image).is_some(),
                    "body atom {atom} (image {image}) missing from chase of {q}"
                );
            }
        }
    }
}

/// The bounded chase respects its level bound.
#[test]
fn bounded_chase_respects_bound() {
    for seed in 0..CASES {
        let q = arb_query(seed);
        let bound = (seed % 6) as u32;
        let chase = chase_bounded(
            &q,
            &ChaseOptions {
                level_bound: bound,
                max_conjuncts: 60_000,
                ..Default::default()
            },
        )
        .unwrap();
        if !chase.is_exhausted() {
            assert!(chase.max_level() <= bound, "seed {seed}: {q}");
        }
    }
}

/// Σ_FL-minimisation preserves Σ_FL-equivalence and never grows.
#[test]
fn minimize_preserves_equivalence() {
    for seed in 0..CASES {
        let q = arb_small_query(seed);
        let m = minimize(&q).unwrap();
        assert!(m.size() <= q.size(), "seed {seed}");
        assert!(
            equivalent(&m, &q).unwrap(),
            "minimize broke equivalence: {q} vs {m}"
        );
    }
}

/// The classic core preserves classic equivalence in both directions.
#[test]
fn classic_core_preserves_classic_equivalence() {
    for seed in 0..CASES {
        let q = arb_small_query(seed);
        let c = classic_core(&q);
        assert!(c.size() <= q.size(), "seed {seed}");
        assert!(classic_contains(&q, &c).unwrap(), "seed {seed}: {q} vs {c}");
        assert!(classic_contains(&c, &q).unwrap(), "seed {seed}: {c} vs {q}");
    }
}

/// Display → parse round trip: predicate notation is lossless.
#[test]
fn predicate_notation_round_trips() {
    for seed in 0..CASES {
        let q = arb_query(seed);
        let text = q.to_string();
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(q.head(), reparsed.head(), "seed {seed}: {text}");
        assert_eq!(q.body(), reparsed.body(), "seed {seed}: {text}");
    }
}

/// F-logic rendering re-parses to a Σ_FL-equivalent query.
#[test]
fn flogic_rendering_is_equivalent() {
    for seed in 0..CASES {
        let q = arb_small_query(seed);
        let text = query_to_flogic(&q);
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(q.arity(), reparsed.arity(), "seed {seed}");
        assert!(
            equivalent(&q, &reparsed).unwrap(),
            "F-logic round trip broke equivalence:\n  {q}\n  {text}\n  {reparsed}"
        );
    }
}
