//! End-to-end reproduction of every worked example in the paper
//! (Section 2 containments, Example 1, Example 2 / Figure 1).

use flogic_lite::chase::{
    chase_bounded, chase_minus, find_mandatory_cycles, has_infinite_chase_potential,
    locality_violations, ChaseOptions, ChaseOutcome,
};
use flogic_lite::core::{classic_contains, contains, contains_str};
use flogic_lite::model::Pred;
use flogic_lite::prelude::*;

// ---------------------------------------------------------------------------
// Section 2, first example: joinable attributes.
// ---------------------------------------------------------------------------

#[test]
fn joinable_attributes_containment_holds() {
    // q(A,B): attributes joinable through a subclass hop; qq(A,B): directly
    // joinable. "We will see that the query containment q ⊆ qq holds."
    let r = contains_str(
        "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].",
        "qq(A,B) :- T1[A*=>T2], T2[B*=>_].",
    )
    .unwrap();
    assert!(r.holds());
}

#[test]
fn joinable_attributes_containment_is_strict() {
    let r = contains_str(
        "qq(A,B) :- T1[A*=>T2], T2[B*=>_].",
        "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].",
    )
    .unwrap();
    assert!(!r.holds(), "the converse containment must fail");
}

#[test]
fn joinable_attributes_needs_sigma() {
    // The containment is NOT classical: it relies on rho7/rho8 (type
    // inheritance through the subclass edge).
    let q1 = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].").unwrap();
    let q2 = parse_query("qq(A,B) :- T1[A*=>T2], T2[B*=>_].").unwrap();
    assert!(!classic_contains(&q1, &q2).unwrap());
    assert!(contains(&q1, &q2).unwrap().holds());
}

// ---------------------------------------------------------------------------
// Section 2, second example: mandatory attributes of non-empty classes.
// ---------------------------------------------------------------------------

#[test]
fn mandatory_attribute_containment_holds() {
    // q: Att mandatory in Class of type Type, Class non-empty.
    // qq: some object has a value for Att, is in Class, and Class[Att*=>Type].
    let r = contains_str(
        "q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.",
        "qq(Att,Class,Type) :- Obj[Att->_], Obj:Class, Class[Att*=>Type].",
    )
    .unwrap();
    assert!(r.holds(), "the paper's second containment example");
}

#[test]
fn mandatory_attribute_containment_mechanism() {
    // The witness requires the chase to: inherit mandatory to the member
    // (rho10), then invent a value (rho5). Verify those rules fire.
    let q1 =
        parse_query("q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.")
            .unwrap();
    let chase = chase_bounded(
        &q1,
        &ChaseOptions {
            level_bound: 12,
            max_conjuncts: 100_000,
            ..Default::default()
        },
    )
    .unwrap();
    use flogic_lite::model::RuleId;
    assert!(
        chase.stats().applications[RuleId::R10.index()] >= 1,
        "rho10 fired"
    );
    assert!(
        chase.stats().applications[RuleId::R5.index()] >= 1,
        "rho5 fired"
    );
}

#[test]
fn mandatory_attribute_containment_is_strict() {
    let r = contains_str(
        "qq(Att,Class,Type) :- Obj[Att->_], Obj:Class, Class[Att*=>Type].",
        "q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.",
    )
    .unwrap();
    assert!(!r.holds());
}

// ---------------------------------------------------------------------------
// Example 1: chase side effects on the query head.
// ---------------------------------------------------------------------------

#[test]
fn example_1_chase_rewrites_the_head() {
    let q = parse_query("q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).")
        .unwrap();
    let chase = chase_minus(&q);
    // "rule rho12 will add the conjunct funct(A, O) and then, by rule rho4,
    // we will replace V2 with V1".
    assert!(chase
        .find(&Atom::funct(Term::var("A"), Term::var("O")))
        .is_some());
    assert_eq!(chase.head(), &[Term::var("V1"), Term::var("V1")]);
}

#[test]
fn example_1_resulting_containments() {
    // After the head rewrite the query behaves like q(V,V).
    let q1 = "q(V1, V2) :- data(O, A, V1), data(O, A, V2), funct(A, C), member(O, C).";
    assert!(contains_str(q1, "qq(W, W) :- data(O, A, W), funct(A, O).")
        .unwrap()
        .holds());
    assert!(contains_str(q1, "qq(W, W) :- data(O, A, W).")
        .unwrap()
        .holds());
}

// ---------------------------------------------------------------------------
// Example 2 / Figure 1: the infinite chase and its graph.
// ---------------------------------------------------------------------------

fn example_2_query() -> flogic_lite::model::ConjunctiveQuery {
    parse_query("q() :- mandatory(A, T), type(T, A, T), sub(T, U).").unwrap()
}

#[test]
fn example_2_has_a_mandatory_cycle() {
    let q = example_2_query();
    assert!(has_infinite_chase_potential(q.body()));
    let cycles = find_mandatory_cycles(q.body());
    assert_eq!(cycles.len(), 1);
    assert_eq!(cycles[0].len(), 1, "self-loop T --A--> T");
}

#[test]
fn example_2_chain_structure() {
    // The chain of Figure 1: mandatory(A,T), type(T,A,T) |- data(T,A,_v1)
    // |- member(_v1,T) |- type(_v1,A,T), mandatory(A,_v1) |- data(_v1,A,_v2) ...
    let chase = chase_bounded(
        &example_2_query(),
        &ChaseOptions {
            level_bound: 9,
            max_conjuncts: 100_000,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        chase.outcome(),
        ChaseOutcome::LevelBounded,
        "chase is infinite"
    );

    // Extract the invented data chain in level order.
    let mut data: Vec<(u32, Atom)> = chase
        .conjuncts()
        .filter(|(_, a, _)| a.pred() == Pred::Data)
        .map(|(_, a, l)| (l, *a))
        .collect();
    data.sort_by_key(|(l, _)| *l);
    assert!(data.len() >= 2);
    // Chain property: data[i].value == data[i+1].object (v1 -> v2 -> ...).
    for w in data.windows(2) {
        assert_eq!(w[0].1.arg(2), w[1].1.arg(0), "the chain is connected");
    }
    // Every invented value is a member of T.
    for (_, d) in &data {
        let v = d.arg(2);
        assert!(
            chase.find(&Atom::member(v, Term::var("T"))).is_some(),
            "member({v}, T) missing"
        );
    }
}

#[test]
fn example_2_branching_via_rho3() {
    // "we obtain the conjunct member(v1, U) from rho3."
    let chase = chase_bounded(
        &example_2_query(),
        &ChaseOptions {
            level_bound: 6,
            max_conjuncts: 100_000,
            ..Default::default()
        },
    )
    .unwrap();
    let branch = chase.conjuncts().any(|(_, a, _)| {
        a.pred() == Pred::Member && a.arg(1) == Term::var("U") && a.arg(0).is_null()
    });
    assert!(branch, "the rho3 branch of Figure 1 exists");
}

#[test]
fn example_2_satisfies_locality_lemma() {
    // Lemma 5 on the actual chase graph.
    let chase = chase_bounded(
        &example_2_query(),
        &ChaseOptions {
            level_bound: 9,
            max_conjuncts: 100_000,
            ..Default::default()
        },
    )
    .unwrap();
    let violations = locality_violations(&chase);
    assert!(violations.is_empty(), "locality violations: {violations:?}");
}

#[test]
fn example_2_dot_rendering_is_figure_1_shaped() {
    let chase = chase_bounded(
        &example_2_query(),
        &ChaseOptions {
            level_bound: 5,
            max_conjuncts: 100_000,
            ..Default::default()
        },
    )
    .unwrap();
    let dot = flogic_lite::chase::to_dot(&chase);
    assert!(dot.contains("mandatory(A, T)"));
    assert!(dot.contains("sub(T, U)"));
    assert!(dot.contains("rho5"));
    assert!(dot.contains("rho1"));
    assert!(dot.contains("rho10"));
}

// ---------------------------------------------------------------------------
// The motivating data/meta mixing from the introduction.
// ---------------------------------------------------------------------------

#[test]
fn mixed_meta_and_data_query_evaluates() {
    // "?- student[Att*=>string], john[Att->Val]." — evaluated over the
    // running example's database.
    let db = parse_database(
        "student[name *=> string]. student[major *=> string].
         student[age *=> number].
         john[name -> jsmith]. john[age -> 33].
         jsmith:string. 33:number.",
    )
    .unwrap();
    let q = parse_query("q(Att, Val) :- student[Att*=>string], john[Att->Val].").unwrap();
    let answers = flogic_lite::datalog::answers(&q, &db);
    assert_eq!(answers.len(), 1);
    let t = answers.iter().next().unwrap();
    assert_eq!(t[0], Term::constant("name"));
    assert_eq!(t[1], Term::constant("jsmith"));
}

#[test]
fn schema_browsing_meta_query() {
    // "?- X::person." returns classes; "?- student[Att*=>string]." returns
    // attributes — meta-querying per the paper's introduction.
    let db = parse_database(
        "employee::person. student::person.
         student[name *=> string]. student[major *=> string].",
    )
    .unwrap();
    let sub_q = parse_query("q(X) :- X::person.").unwrap();
    assert_eq!(flogic_lite::datalog::answers(&sub_q, &db).len(), 2);
    let attr_q = parse_query("q(Att) :- student[Att*=>string].").unwrap();
    assert_eq!(flogic_lite::datalog::answers(&attr_q, &db).len(), 2);
}
