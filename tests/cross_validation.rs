//! Empirical cross-validation of the Theorem 12 decision procedure.
//!
//! The theory says `q1 ⊆_ΣFL q2` iff `q1(B) ⊆ q2(B)` for *every* database
//! `B` satisfying `Σ_FL`. We attack both directions of every verdict:
//!
//! * verdicts of **contained** are checked on many random `Σ_FL`-closed
//!   databases (a single counterexample database would disprove the
//!   implementation);
//! * verdicts of **not contained** are checked against a chase twice as
//!   deep as the Theorem 12 bound (if the bound were wrong, a homomorphism
//!   would appear beyond it) and against the naive iterative-deepening
//!   procedure.

use flogic_lite::gen::rng::SplitMix64;

use flogic_lite::chase::{chase_bounded, ChaseOptions, ChaseOutcome};
use flogic_lite::core::{contains, naive, theorem_bound};
use flogic_lite::datalog::{answers, close_database, ClosureOptions};
use flogic_lite::gen::{
    generalize, generalize_from_chase, random_database, random_query, DbGenConfig,
    GeneralizeConfig, QueryGenConfig,
};
use flogic_lite::hom::{find_hom, Target};

fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}

/// Checks `q1(B) ⊆ q2(B)` on a batch of random closed databases;
/// returns how many databases were usable (closed within budget).
fn holds_on_random_databases(
    q1: &flogic_lite::model::ConjunctiveQuery,
    q2: &flogic_lite::model::ConjunctiveQuery,
    seeds: std::ops::Range<u64>,
) -> (usize, bool) {
    let mut used = 0;
    for seed in seeds {
        let db = random_database(&DbGenConfig::default(), &mut rng(seed));
        let Ok((closed, _)) = close_database(&db, &ClosureOptions::default()) else {
            continue; // inconsistent or infinite closure: not an admissible B
        };
        used += 1;
        let a1 = answers(q1, &closed);
        let a2 = answers(q2, &closed);
        if !a1.is_subset(&a2) {
            return (used, false);
        }
    }
    (used, true)
}

#[test]
fn contained_generalizations_hold_on_concrete_databases() {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let mut checked_pairs = 0;
    for seed in 0..15u64 {
        let q1 = random_query(&qcfg, &mut rng(seed));
        let q2 = generalize(&q1, &gcfg, &mut rng(seed + 500));
        let verdict = contains(&q1, &q2).unwrap();
        assert!(
            verdict.holds(),
            "generalize guarantees containment (seed {seed})"
        );
        let (used, ok) = holds_on_random_databases(&q1, &q2, 0..10);
        assert!(ok, "counterexample database found for seed {seed}");
        if used > 0 {
            checked_pairs += 1;
        }
    }
    assert!(
        checked_pairs >= 10,
        "most pairs must actually get database checks"
    );
}

#[test]
fn chase_generalizations_hold_on_concrete_databases() {
    let qcfg = QueryGenConfig {
        n_atoms: 4,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig {
        keep_atom_prob: 0.5,
        blur_prob: 0.4,
    };
    for seed in 100..115u64 {
        let q1 = random_query(&qcfg, &mut rng(seed));
        let Some(q2) = generalize_from_chase(&q1, &gcfg, &mut rng(seed + 500)) else {
            continue;
        };
        let verdict = contains(&q1, &q2).unwrap();
        assert!(
            verdict.holds(),
            "Theorem 4 guarantees Sigma-containment for chase generalizations (seed {seed}): {q1} vs {q2}"
        );
        let (_, ok) = holds_on_random_databases(&q1, &q2, 0..8);
        assert!(ok, "counterexample database for seed {seed}");
    }
}

#[test]
fn not_contained_verdicts_survive_double_depth() {
    // For random (likely unrelated) pairs that the procedure rejects, going
    // to twice the theorem bound must not change the answer.
    let qcfg = QueryGenConfig {
        n_atoms: 3,
        n_vars: 3,
        n_consts: 2,
        ..Default::default()
    };
    let mut rejected = 0;
    for seed in 200..230u64 {
        let q1 = random_query(&qcfg, &mut rng(seed));
        let q2 = random_query(&qcfg, &mut rng(seed + 999));
        if q1.arity() != q2.arity() {
            continue;
        }
        let verdict = contains(&q1, &q2).unwrap();
        if verdict.holds() {
            continue;
        }
        rejected += 1;
        let deep_bound = 2 * theorem_bound(&q1, &q2) + 4;
        let chase = chase_bounded(
            &q1,
            &ChaseOptions {
                level_bound: deep_bound,
                max_conjuncts: 2_000_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            !matches!(chase.outcome(), ChaseOutcome::Failed { .. }),
            "verdict would have been vacuous"
        );
        let target = Target::from_chase(&chase);
        let hom = find_hom(q2.body(), q2.head(), &target, chase.head());
        assert!(
            hom.is_none(),
            "hom beyond the Theorem 12 bound for seed {seed}: {q1} vs {q2}"
        );
    }
    assert!(
        rejected >= 10,
        "workload must exercise the not-contained path"
    );
}

#[test]
fn naive_and_bounded_procedures_agree() {
    let qcfg = QueryGenConfig {
        n_atoms: 3,
        n_vars: 4,
        n_consts: 2,
        ..Default::default()
    };
    let gcfg = GeneralizeConfig::default();
    let mut decided_by_naive = 0;
    for seed in 300..340u64 {
        let q1 = random_query(&qcfg, &mut rng(seed));
        // Mix: half generalizations (contained), half random (usually not).
        let q2 = if seed % 2 == 0 {
            generalize(&q1, &gcfg, &mut rng(seed + 1))
        } else {
            let alt = random_query(&qcfg, &mut rng(seed + 1));
            if alt.arity() != q1.arity() {
                continue;
            }
            alt
        };
        let bounded = contains(&q1, &q2).unwrap().holds();
        match naive::contains_naive(&q1, &q2, 16, 1_000_000).unwrap() {
            naive::NaiveOutcome::Holds { .. } => {
                decided_by_naive += 1;
                assert!(bounded, "naive says holds, bounded disagrees (seed {seed})");
            }
            naive::NaiveOutcome::NotContained { .. } => {
                decided_by_naive += 1;
                assert!(!bounded, "naive refutes, bounded disagrees (seed {seed})");
            }
            naive::NaiveOutcome::Unknown => {}
        }
    }
    assert!(
        decided_by_naive >= 20,
        "the workload must exercise both procedures"
    );
}

#[test]
fn vacuous_verdicts_match_database_emptiness() {
    // If the chase of q1 fails, q1 must return no answers over any closed
    // database we can construct.
    let q1 = flogic_lite::syntax::parse_query(
        "q() :- data(o0, a0, o1), data(o0, a0, o2), funct(a0, o0).",
    )
    .unwrap();
    let verdict = contains(
        &q1,
        &flogic_lite::syntax::parse_query("qq() :- sub(X, Y).").unwrap(),
    )
    .unwrap();
    assert!(verdict.holds() && verdict.is_vacuous());
    for seed in 0..10u64 {
        let db = random_database(&DbGenConfig::default(), &mut rng(seed));
        let Ok((closed, _)) = close_database(&db, &ClosureOptions::default()) else {
            continue;
        };
        assert!(
            answers(&q1, &closed).is_empty(),
            "vacuously-contained query produced answers on seed {seed}"
        );
    }
}
