//! # flogic-lite
//!
//! A complete implementation of **"Containment of Conjunctive Object
//! Meta-Queries"** (Andrea Calì and Michael Kifer, VLDB 2006): the F-logic
//! Lite data model, its relational encoding `P_FL` with the rule set
//! `Σ_FL`, the chase machinery of the paper, and the decision procedure for
//! conjunctive meta-query containment under `Σ_FL`.
//!
//! This umbrella crate re-exports the public API of the workspace:
//!
//! * [`term`] — interned symbols, terms and substitutions;
//! * [`syntax`] — parser and pretty-printer for F-logic Lite surface syntax;
//! * [`model`] — `P_FL` atoms, conjunctive queries, databases and `Σ_FL`;
//! * [`datalog`] — a bottom-up Datalog engine used to evaluate meta-queries
//!   over concrete databases and to close databases under `Σ_FL`;
//! * [`chase`] — the chase of a query w.r.t. `Σ_FL`, with levels and the
//!   chase graph of Definition 3;
//! * [`hom`] — homomorphism search and query cores;
//! * [`core`] — the containment decision procedure (Theorems 12 and 13);
//! * [`gen`] — seeded random workload generators;
//! * [`analysis`] — static diagnostics (`FL001`…), the `Σ_FL` dependency
//!   graph and the containment fast paths behind
//!   [`ContainmentOptions::analysis`](flogic_core::ContainmentOptions);
//! * [`obs`] — structured chase tracing: typed events, per-worker ring
//!   buffers, `ChaseProfile` rollups and JSONL/CSV export;
//! * [`serve`] — `flqd`, the resident batched containment service: a
//!   dependency-free HTTP/1.1 server with warm decision and
//!   chase-snapshot caches (also reachable as `flq serve`);
//! * [`store`] — the durable decision tier: a dependency-free LSM store
//!   (WAL, segments, bloom filters, fenced manifest, background
//!   compaction) persisting containment verdicts across restarts behind
//!   `flqd --data-dir`; on-disk format in `docs/STORAGE.md`.
//!
//! ## Quickstart
//!
//! ```
//! use flogic_lite::prelude::*;
//!
//! // The "joinable attributes" example from Section 2 of the paper.
//! let q = parse_query("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].").unwrap();
//! let qq = parse_query("qq(A,B) :- T1[A*=>T2], T2[B*=>_].").unwrap();
//!
//! assert!(contains(&q, &qq).unwrap().holds());
//! assert!(!contains(&qq, &q).unwrap().holds());
//! ```

pub use flogic_analysis as analysis;
pub use flogic_chase as chase;
pub use flogic_core as core;
pub use flogic_datalog as datalog;
pub use flogic_gen as gen;
pub use flogic_hom as hom;
pub use flogic_model as model;
pub use flogic_obs as obs;
pub use flogic_serve as serve;
pub use flogic_store as store;
pub use flogic_syntax as syntax;
pub use flogic_term as term;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use flogic_analysis::{analyze_program, lint_source, DiagCode, Diagnostic, Severity};
    pub use flogic_core::{contains, equivalent, ContainmentResult};
    pub use flogic_model::{Atom, ConjunctiveQuery, Database, Pred};
    pub use flogic_syntax::{parse_database, parse_goal, parse_program, parse_query};
    pub use flogic_term::{Subst, Symbol, Term};
}
