//! `flqd` — the resident batched containment service as a standalone
//! daemon.
//!
//! ```text
//! flqd [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-bytes N]
//!      [--max-body-bytes N] [--threads N] [--timeout MS]
//!      [--max-conjuncts N] [--read-timeout MS] [--ready-fd FD]
//!      [--no-canon] [--access-log FILE|-] [--slow-us N] [--log-sample 1/N]
//!      [--data-dir DIR]
//! ```
//!
//! Prints `flqd listening on HOST:PORT` on stdout once bound (with the
//! real port when `--addr` asked for `:0`), serves until SIGTERM or
//! ctrl-c, drains in-flight requests, and exits `0`. See `docs/CLI.md`
//! for the flags and `docs/ARCHITECTURE.md` for the request lifecycle;
//! `flq serve` is the same server behind the `flq` front end.

use std::process::ExitCode;

fn main() -> ExitCode {
    ExitCode::from(flogic_lite::serve::run_cli(std::env::args().skip(1)))
}
