//! `flq` — command-line front end for the F-logic Lite toolkit.
//!
//! ```text
//! flq contains  "<q1>" "<q2>" [--threads N] [--no-analysis]
//!                             [--timeout MS] [--max-conjuncts N] [--sigma FILE]
//!                                    decide q1 ⊆_Σ q2 (and the converse)
//! flq explain   "<q1>" "<q2>" [--threads N] [--no-analysis]
//!                             [--timeout MS] [--max-conjuncts N] [--sigma FILE]
//!                                    prove the containment step by step
//! flq profile   "<q1>" "<q2>" [--threads N] [--timeout MS] [--max-conjuncts N]
//!               [--sigma FILE]
//!                                    decide q1 ⊆_Σ q2 with tracing on and
//!                                    print the chase profile: per-rule firing
//!                                    histogram, level growth, phase timing,
//!                                    observed depth vs. the Theorem 12 bound
//! flq chase     "<q>" [--bound N] [--dot] [--threads N]
//!                     [--timeout MS] [--max-conjuncts N] [--sigma FILE]
//!                                    materialize the (bounded) chase
//! flq minimize  "<q>"                Σ_FL-aware query minimisation
//! flq lint      <file> [--json]      static analysis: coded diagnostics
//!                                    (FL001…FL007) with line:col spans
//! flq lint      --sigma FILE [--json]
//!                                    Σ-admission: classify a constraint set
//!                                    (weak acyclicity / guardedness /
//!                                    stickiness, FL010…FL014) and report
//!                                    whether it is admitted for the chase
//! flq eval      <file>               run a program: facts are closed under
//!                                    Σ_FL, goals/queries are answered
//! flq serve     [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!               [--cache-bytes N] [--max-body-bytes N] [--threads N]
//!               [--timeout MS] [--max-conjuncts N] [--read-timeout MS]
//!               [--ready-fd FD] [--no-canon] [--access-log FILE|-]
//!               [--slow-us N] [--log-sample 1/N]
//!                                    run flqd, the resident containment
//!                                    service, in the foreground
//! flq status    <url>                fetch a running flqd's /v1/status and
//!                                    render it as a human-readable table:
//!                                    uptime, per-stage latency percentiles,
//!                                    gauges, cache hit ratios
//! flq cache     <stat|compact|inspect|verify> DIR [--limit N]
//!                                    operate offline on a `flqd --data-dir`
//!                                    decision store: print counters and the
//!                                    live segment set, merge all segments
//!                                    into one, decode a sample of persisted
//!                                    verdicts, or re-checksum every segment
//! flq help                           print this reference on stdout, exit 0
//! ```
//!
//! Flags (an unknown flag is an error):
//!
//! * `--threads N` — worker threads for chase rule discovery; `1` (the
//!   default) is fully sequential, `0` uses all available cores. The
//!   decision never depends on it.
//! * `--no-analysis` — skip the static fast paths of `flogic-analysis`
//!   and always materialize the chase. Verdicts are identical either way.
//! * `--timeout MS` — wall-clock budget in milliseconds. A run that hits
//!   it stops cooperatively and reports *exhausted* instead of a verdict.
//! * `--max-conjuncts N` — cap on materialized chase conjuncts (an
//!   approximate memory budget; default one million).
//! * `--bound N` — chase level bound for `flq chase` (default `2·|q|`).
//! * `--dot` — emit the chase graph in Graphviz DOT format.
//! * `--sigma FILE` — replace the built-in `Σ_FL` with a user-supplied
//!   constraint set (`.sigma` TGD/EGD syntax, see `docs/CLI.md`). The set
//!   is admission-checked first: a set that fails every chase-termination
//!   class (or has hard errors, FL010/FL011) is rejected with exit 2 and
//!   the chase never runs. A structurally-`Σ_FL` file behaves bit-identically
//!   to the default.
//! * `--json` — `flq lint` only: emit diagnostics as JSONL (one flat JSON
//!   object per diagnostic) instead of the human-readable form.
//! * `--addr HOST:PORT`, `--workers N`, `--queue-cap N`,
//!   `--cache-bytes N`, `--max-body-bytes N`, `--read-timeout MS`,
//!   `--ready-fd FD`, `--no-canon` — `flq serve` knobs (listen address,
//!   worker pool, dispatch-queue depth, snapshot-cache byte cap,
//!   request-body cap, keep-alive idle timeout, readiness fd, and an
//!   escape hatch disabling semantic cache-key canonicalization); see
//!   `docs/CLI.md` for the full server reference.
//! * `--access-log FILE|-`, `--slow-us N`, `--log-sample 1/N` —
//!   `flq serve` observability knobs: a structured JSONL access log (one
//!   line per request; `-` for stdout), a slow-request threshold in
//!   microseconds that bypasses sampling, and a 1-in-N sampling divisor.
//! * `--data-dir DIR` — `flq serve` only: persist decided containments to
//!   an LSM store under `DIR` so a restarted server begins disk-warm
//!   (`docs/STORAGE.md` specifies the format; `flq cache` inspects it).
//! * `--limit N` — `flq cache inspect` only: how many persisted decisions
//!   to decode and print (default 10).
//!
//! Every subcommand additionally accepts:
//!
//! * `--trace-out FILE` — record structured chase events and write them as
//!   JSONL to `FILE` on exit (one flat JSON object per event; an empty run
//!   yields an empty, still-valid file). Tracing never changes verdicts.
//! * `--metrics` — print the process-wide
//!   [`MetricsSnapshot`] delta for this
//!   invocation to stderr on exit.
//!
//! Exit codes: `0` success, `1` failure (parse error, diagnostics, …),
//! `2` usage error, `3` resource exhaustion — the budget ran out before
//! the procedure could decide; nothing is known about the verdict.
//!
//! `flq lint <file>` exits 0 when the program is clean, 1 when any
//! diagnostic (or a parse error) is reported, 2 on usage errors.
//! `flq lint --sigma FILE` exits 0 when the set is *admitted* (warnings
//! allowed), 1 on read/parse errors, 2 when the set is rejected.
//!
//! Queries use the paper's syntax, e.g. `q(A,B) :- T1[A*=>T2], T2[B*=>_].`
//! Program files mix facts (`john:student.`), rules and goals (`?- X::person.`).

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use flogic_lite::analysis::{admit_sigma, classify_rule_set, lint_source};
use flogic_lite::chase::{chase_bounded, to_dot, to_text, Budget, ChaseOptions};
use flogic_lite::core::{
    classic_contains, contains_with, explain, minimize_with, ContainmentOptions, CoreError,
};
use flogic_lite::datalog::{answers, close_database, ClosureOptions};
use flogic_lite::model::{DepGraph, RuleSet};
use flogic_lite::obs::{export, ChaseProfile, TraceHandle, Tracer};
use flogic_lite::prelude::*;
use flogic_lite::serve::SERVE_FLAGS;
use flogic_lite::syntax::query_to_flogic;
use flogic_lite::term::{Metrics, MetricsSnapshot};

/// Exit code for resource exhaustion: the budget ran out before the
/// procedure could decide (distinct from failure, which means the answer
/// is known to be an error).
const EXIT_EXHAUSTED: u8 = 3;

/// The subcommands `main` dispatches on, for the unknown-subcommand
/// error message and the `help` output.
const SUBCOMMANDS: &[&str] = &[
    "contains", "explain", "profile", "chase", "minimize", "lint", "eval", "serve", "status",
    "cache", "help",
];

/// The full usage text, shared by `flq help` (stdout, exit 0) and usage
/// errors (stderr, exit 2). The serve flags come verbatim from
/// `flogic-serve` so the two stay in lockstep.
fn usage_text() -> String {
    format!(
        "usage:\n  flq contains <q1> <q2> [--threads N] [--no-analysis] [--timeout MS] [--max-conjuncts N] [--sigma FILE]\n  \
         flq explain <q1> <q2> [--threads N] [--no-analysis] [--timeout MS] [--max-conjuncts N] [--sigma FILE]\n  \
         flq profile <q1> <q2> [--threads N] [--timeout MS] [--max-conjuncts N] [--sigma FILE]\n  \
         flq chase <q> [--bound N] [--dot] [--threads N] [--timeout MS] [--max-conjuncts N] [--sigma FILE]\n  \
         flq minimize <q> [--timeout MS] [--max-conjuncts N]\n  flq lint <file> [--json]\n  \
         flq lint --sigma FILE [--json]\n  flq eval <file>\n  \
         flq serve {SERVE_FLAGS}\n  \
         flq status <url>\n  \
         flq cache <stat|compact|inspect|verify> DIR [--limit N]\n  flq help (also --help, -h)\n\
         every subcommand also accepts --trace-out FILE (JSONL event trace)\n\
         and --metrics (counter deltas on stderr)\n\
         exit codes: 0 success, 1 failure, 2 usage error (incl. rejected --sigma sets), 3 exhausted budget"
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("contains") => cmd_contains(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("chase") => cmd_chase(&args[1..]),
        Some("minimize") => cmd_minimize(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("serve") => ExitCode::from(flogic_lite::serve::run_cli(args[1..].to_vec())),
        Some("status") => cmd_status(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("help" | "--help" | "-h") => {
            println!("{}", usage_text());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!(
                "error: unknown subcommand {other:?} (available: {})",
                SUBCOMMANDS.join(", ")
            );
            usage()
        }
        None => usage(),
    }
}

fn parse_or_exit(src: &str) -> Result<flogic_lite::model::ConjunctiveQuery, ExitCode> {
    parse_query(src).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

/// Loads a `--sigma FILE` constraint set and gates it through Σ-admission.
///
/// A set that fails admission (no chase-termination class holds, or hard
/// FL010/FL011 errors) prints its diagnostics to stderr and exits 2 — the
/// invocation asked for a Σ the bounded chase cannot soundly run under.
/// Unreadable or unparsable files exit 1. Warnings of an *admitted* set
/// are printed to stderr but do not change the exit code.
fn load_sigma(path: &str) -> Result<Arc<RuleSet>, ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let admission = match admit_sigma(&src, path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{path}: error: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    for d in admission.diagnostics() {
        eprintln!("{path}:{d}");
    }
    if !admission.is_admitted() {
        eprintln!("{path}: {}", admission.summary());
        return Err(ExitCode::from(2));
    }
    Ok(admission.rule_set().clone())
}

/// Cross-cutting observability state behind the `--trace-out` and
/// `--metrics` flags every subcommand accepts.
struct CliObs {
    /// Event sink; present iff `--trace-out` was given (or the subcommand
    /// forces tracing, as `flq profile` does).
    tracer: Option<Arc<Tracer>>,
    /// Where to write the JSONL trace at exit.
    trace_out: Option<String>,
    /// Baseline snapshot taken when `--metrics` was parsed; the delta
    /// against it is printed to stderr at exit.
    metrics_before: Option<MetricsSnapshot>,
}

impl CliObs {
    fn disabled() -> CliObs {
        CliObs {
            tracer: None,
            trace_out: None,
            metrics_before: None,
        }
    }

    /// Tries to consume `arg` (and, for `--trace-out`, its value from
    /// `it`) as one of the shared observability flags. `Ok(true)` means
    /// the flag was recognised and handled.
    fn try_consume(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, ExitCode> {
        match arg {
            "--trace-out" => match it.next() {
                Some(path) => {
                    self.trace_out = Some(path.clone());
                    self.ensure_tracer();
                    Ok(true)
                }
                None => {
                    eprintln!("error: --trace-out needs a file path");
                    Err(usage())
                }
            },
            "--metrics" => {
                self.metrics_before = Some(Metrics::global().snapshot());
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Makes sure an event sink exists (used by `flq profile`, which
    /// traces even without `--trace-out`).
    fn ensure_tracer(&mut self) {
        if self.tracer.is_none() {
            self.tracer = Some(Tracer::with_default_capacity());
        }
    }

    /// The handle instrumented code should record through: enabled iff a
    /// tracer exists, otherwise the zero-cost disabled handle.
    fn handle(&self) -> TraceHandle {
        match &self.tracer {
            Some(t) => TraceHandle::enabled(t),
            None => TraceHandle::Disabled,
        }
    }

    /// Writes the JSONL trace (if requested) and prints the metrics delta
    /// (if requested). Returns the exit code to use: `code` itself, or
    /// failure when the trace file could not be written.
    fn finish(&self, code: ExitCode) -> ExitCode {
        let mut out = code;
        if let (Some(tracer), Some(path)) = (&self.tracer, &self.trace_out) {
            let snapshot = tracer.snapshot();
            let written = std::fs::File::create(path).and_then(|f| {
                let mut w = std::io::BufWriter::new(f);
                export::write_jsonl(&mut w, &snapshot)?;
                w.flush()
            });
            if let Err(e) = written {
                eprintln!("error writing trace to {path}: {e}");
                out = ExitCode::FAILURE;
            }
        }
        if let Some(before) = &self.metrics_before {
            eprintln!("metrics: {}", Metrics::global().snapshot().since(before));
        }
        out
    }
}

/// Splits `args` into positionals, containment options and observability
/// state; any flag not listed in the module docs is a usage error.
#[allow(clippy::type_complexity)]
fn split_contains_args(
    args: &[String],
) -> Result<(Vec<&String>, ContainmentOptions, CliObs), ExitCode> {
    let mut opts = ContainmentOptions::default();
    let mut obs = CliObs::disabled();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if obs.try_consume(a.as_str(), &mut it)? {
            continue;
        }
        match a.as_str() {
            "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.threads = n,
                None => {
                    eprintln!("error: --threads needs a number");
                    return Err(usage());
                }
            },
            "--no-analysis" => opts.analysis = false,
            "--timeout" => match it.next().and_then(|n| n.parse().ok()) {
                Some(ms) => opts.budget = Budget::with_timeout(Duration::from_millis(ms)),
                None => {
                    eprintln!("error: --timeout needs a duration in milliseconds");
                    return Err(usage());
                }
            },
            "--max-conjuncts" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.max_conjuncts = n,
                None => {
                    eprintln!("error: --max-conjuncts needs a number");
                    return Err(usage());
                }
            },
            "--sigma" => match it.next() {
                Some(path) => opts.sigma = load_sigma(path)?,
                None => {
                    eprintln!("error: --sigma needs a file path");
                    return Err(usage());
                }
            },
            s if s.starts_with("--") => {
                eprintln!("error: unknown flag `{s}`");
                return Err(usage());
            }
            _ => positional.push(a),
        }
    }
    opts.trace = obs.handle();
    Ok((positional, opts, obs))
}

fn cmd_contains(args: &[String]) -> ExitCode {
    let (positional, opts, obs) = match split_contains_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let [q1_src, q2_src] = positional.as_slice() else {
        return usage();
    };
    let code = run_contains(q1_src, q2_src, &opts);
    obs.finish(code)
}

fn run_contains(q1_src: &str, q2_src: &str, opts: &ContainmentOptions) -> ExitCode {
    let (q1, q2) = match (parse_or_exit(q1_src), parse_or_exit(q2_src)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return ExitCode::FAILURE,
    };
    let forward = match contains_with(&q1, &q2, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rel = if opts.sigma.is_sigma_fl() {
        "⊆_ΣFL"
    } else {
        "⊆_Σ"
    };
    println!("q1: {q1}");
    println!("q2: {q2}");
    println!();
    if let flogic_lite::core::Verdict::Exhausted(reason) = forward.verdict() {
        println!(
            "q1 {rel} q2:  EXHAUSTED ({reason}) — undecided after {} chase conjuncts, level {} of bound {}",
            forward.chase_conjuncts(),
            forward.max_chase_level(),
            forward.level_bound()
        );
        return ExitCode::from(EXIT_EXHAUSTED);
    }
    println!(
        "q1 {rel} q2:  {}{}{}",
        forward.holds(),
        if forward.is_vacuous() {
            "  (vacuous: q1 unsatisfiable)"
        } else {
            ""
        },
        if forward.decided_by_analysis() {
            "  [decided statically, no chase]"
        } else {
            ""
        }
    );
    if let Some(w) = forward.witness() {
        println!("  witness: {w}");
    }
    if opts.sigma.is_sigma_fl() {
        println!(
            "  chase: {} conjuncts, bound {} (Theorem 12: 2*{}*{})",
            forward.chase_conjuncts(),
            forward.level_bound(),
            q1.size(),
            q2.size()
        );
    } else {
        println!(
            "  chase: {} conjuncts, bound {} (derived from the admitted Σ)",
            forward.chase_conjuncts(),
            forward.level_bound()
        );
    }
    let mut exhausted_back = false;
    if let Ok(back) = contains_with(&q2, &q1, opts) {
        if let flogic_lite::core::Verdict::Exhausted(reason) = back.verdict() {
            println!("q2 {rel} q1:  EXHAUSTED ({reason})");
            exhausted_back = true;
        } else {
            println!("q2 {rel} q1:  {}", back.holds());
        }
    }
    if let Ok(classic) = classic_contains(&q1, &q2) {
        println!("q1 ⊆ q2 classically (no Σ_FL):  {classic}");
    }
    if exhausted_back {
        return ExitCode::from(EXIT_EXHAUSTED);
    }
    ExitCode::SUCCESS
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let (positional, opts, obs) = match split_contains_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let [q1_src, q2_src] = positional.as_slice() else {
        return usage();
    };
    let code = run_explain(q1_src, q2_src, &opts);
    obs.finish(code)
}

fn run_explain(q1_src: &str, q2_src: &str, opts: &ContainmentOptions) -> ExitCode {
    let (q1, q2) = match (parse_or_exit(q1_src), parse_or_exit(q2_src)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return ExitCode::FAILURE,
    };
    match explain(&q1, &q2, opts) {
        Ok(e) => {
            println!("q1: {q1}");
            println!("q2: {q2}\n");
            println!("{e}");
            print_invention_cycles(&q1, &q2, opts);
            ExitCode::SUCCESS
        }
        Err(e @ CoreError::Exhausted { .. }) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_EXHAUSTED)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (positional, mut opts, mut obs) = match split_contains_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let [q1_src, q2_src] = positional.as_slice() else {
        return usage();
    };
    // Profiling always traces, with or without --trace-out, and forces the
    // chase to materialize: a containment short-circuited by static
    // analysis would have nothing to report.
    obs.ensure_tracer();
    opts.analysis = false;
    opts.trace = obs.handle();
    let code = run_profile(q1_src, q2_src, &opts, &obs);
    obs.finish(code)
}

fn run_profile(q1_src: &str, q2_src: &str, opts: &ContainmentOptions, obs: &CliObs) -> ExitCode {
    let (q1, q2) = match (parse_or_exit(q1_src), parse_or_exit(q2_src)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return ExitCode::FAILURE,
    };
    let result = match contains_with(&q1, &q2, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("q1: {q1}");
    println!("q2: {q2}");
    println!();
    let exhausted = matches!(result.verdict(), flogic_lite::core::Verdict::Exhausted(_));
    match result.verdict() {
        flogic_lite::core::Verdict::Exhausted(reason) => println!(
            "q1 ⊆_ΣFL q2:  EXHAUSTED ({reason}) — the profile below covers the\n\
             prefix of the chase materialized before the budget ran out"
        ),
        _ => println!("q1 ⊆_ΣFL q2:  {}", result.holds()),
    }
    println!();
    let snapshot = obs
        .tracer
        .as_ref()
        .map(|t| t.snapshot())
        .unwrap_or_else(flogic_lite::obs::TraceSnapshot::empty);
    print!("{}", ChaseProfile::from_snapshot(&snapshot));
    if exhausted {
        return ExitCode::from(EXIT_EXHAUSTED);
    }
    ExitCode::SUCCESS
}

/// Why the chase must be cut off at a level bound: the active constraint
/// set's dependency graph contains a cycle through an existential
/// (value-inventing) edge, so the unrestricted chase need not terminate.
fn print_invention_cycles(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, opts: &ContainmentOptions) {
    if opts.sigma.is_sigma_fl() {
        let cycles = DepGraph::sigma_fl().invention_cycles();
        if cycles.is_empty() {
            return;
        }
        println!();
        for cycle in &cycles {
            let path: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
            println!(
                "note: Σ_FL has a value-invention cycle {} -> (rho5, fresh value) -> {},",
                path.join(" -> "),
                path[0]
            );
        }
        println!(
            "      so the chase may be infinite and is cut at level 2*|q1|*|q2| = {} (Theorem 12).",
            flogic_lite::core::theorem_bound(q1, q2)
        );
        return;
    }
    let cycles = DepGraph::for_rules(opts.sigma.rules()).invention_cycles();
    if cycles.is_empty() {
        return;
    }
    println!();
    for cycle in &cycles {
        let path: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
        println!(
            "note: the active Σ has a value-invention cycle {} -> (fresh value) -> {},",
            path.join(" -> "),
            path[0]
        );
    }
    println!(
        "      so the chase may be infinite and is cut at the derived level bound {}.",
        classify_rule_set(opts.sigma.clone()).level_bound(q1.size(), q2.size())
    );
}

fn cmd_chase(args: &[String]) -> ExitCode {
    let Some(q_src) = args.first() else {
        return usage();
    };
    let q = match parse_or_exit(q_src) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let mut bound = 2 * q.size() as u32; // δ, a sensible default depth
    let mut dot = false;
    let mut threads = 1;
    let mut max_conjuncts = 1_000_000;
    let mut budget = Budget::unlimited();
    let mut sigma = RuleSet::sigma_fl().clone();
    let mut obs = CliObs::disabled();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match obs.try_consume(a.as_str(), &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(code) => return code,
        }
        match a.as_str() {
            "--bound" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => bound = n,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => threads = n,
                None => return usage(),
            },
            "--timeout" => match it.next().and_then(|n| n.parse().ok()) {
                Some(ms) => budget = Budget::with_timeout(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--max-conjuncts" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_conjuncts = n,
                None => return usage(),
            },
            "--dot" => dot = true,
            "--sigma" => match it.next() {
                Some(path) => match load_sigma(path) {
                    Ok(s) => sigma = s,
                    Err(code) => return code,
                },
                None => {
                    eprintln!("error: --sigma needs a file path");
                    return usage();
                }
            },
            s => {
                eprintln!("error: unknown argument `{s}`");
                return usage();
            }
        }
    }
    let chase_opts = ChaseOptions {
        level_bound: bound,
        max_conjuncts,
        threads,
        budget,
        trace: obs.handle(),
        sigma,
    };
    let code = run_chase(&q, &chase_opts, dot);
    obs.finish(code)
}

fn run_chase(q: &ConjunctiveQuery, opts: &ChaseOptions, dot: bool) -> ExitCode {
    let chase = match chase_bounded(q, opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let flogic_lite::chase::ChaseOutcome::Exhausted { reason } = chase.outcome() {
        eprintln!(
            "chase EXHAUSTED ({reason}): stopped after {} conjuncts at level {}; \
             the materialization below is a prefix, not the full chase",
            chase.len(),
            chase.max_level()
        );
        if dot {
            print!("{}", to_dot(&chase));
        } else {
            print!("{}", to_text(&chase));
        }
        return ExitCode::from(EXIT_EXHAUSTED);
    }
    if chase.is_failed() {
        println!("chase FAILED (rho4 equated two distinct constants): the query is\nunsatisfiable w.r.t. Sigma_FL; it is contained in every query of its arity.");
        return ExitCode::SUCCESS;
    }
    if dot {
        print!("{}", to_dot(&chase));
    } else {
        println!(
            "outcome: {:?}   conjuncts: {}   max level: {}   head: ({})",
            chase.outcome(),
            chase.len(),
            chase.max_level(),
            chase
                .head()
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        print!("{}", to_text(&chase));
    }
    ExitCode::SUCCESS
}

fn cmd_minimize(args: &[String]) -> ExitCode {
    let (positional, opts, obs) = match split_contains_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let [q_src] = positional.as_slice() else {
        return usage();
    };
    let code = run_minimize(q_src, &opts);
    obs.finish(code)
}

fn run_minimize(q_src: &str, opts: &ContainmentOptions) -> ExitCode {
    let q = match parse_or_exit(q_src) {
        Ok(q) => q,
        Err(code) => return code,
    };
    match minimize_with(&q, opts) {
        Ok(m) => {
            println!("input    ({} conjuncts): {q}", q.size());
            println!("minimal  ({} conjuncts): {m}", m.size());
            println!("f-logic  : {}", query_to_flogic(&m));
            ExitCode::SUCCESS
        }
        Err(e @ CoreError::Exhausted { .. }) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_EXHAUSTED)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Splits the args of the file-oriented subcommand (`eval`): exactly one
/// positional path plus the shared observability flags.
fn split_file_args(args: &[String]) -> Result<(&String, CliObs), ExitCode> {
    let mut obs = CliObs::disabled();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if obs.try_consume(a.as_str(), &mut it)? {
            continue;
        }
        if a.starts_with("--") {
            eprintln!("error: unknown flag `{a}`");
            return Err(usage());
        }
        positional.push(a);
    }
    let [path] = positional.as_slice() else {
        return Err(usage());
    };
    Ok((path, obs))
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut obs = CliObs::disabled();
    let mut json = false;
    let mut sigma_path: Option<&String> = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs.try_consume(a.as_str(), &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(code) => return code,
        }
        match a.as_str() {
            "--json" => json = true,
            "--sigma" => match it.next() {
                Some(p) => sigma_path = Some(p),
                None => {
                    eprintln!("error: --sigma needs a file path");
                    return usage();
                }
            },
            s if s.starts_with("--") => {
                eprintln!("error: unknown flag `{s}`");
                return usage();
            }
            _ => positional.push(a),
        }
    }
    let code = match (sigma_path, positional.as_slice()) {
        (Some(path), []) => run_lint_sigma(path, json),
        (None, [path]) => run_lint(path, json),
        _ => usage(),
    };
    obs.finish(code)
}

/// One diagnostic as a flat JSON object — one line of `lint --json`
/// output.
fn diagnostic_json(path: &str, d: &Diagnostic) -> String {
    format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"path\":\"{}\"}}",
        d.code,
        d.severity,
        d.pos.line,
        d.pos.col,
        json_escape(&d.message),
        json_escape(path)
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars);
/// non-ASCII is passed through as UTF-8, which JSON allows.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn run_lint(path: &str, json: bool) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diagnostics = match lint_source(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if diagnostics.is_empty() {
        // With --json an empty output is the (still valid) JSONL for
        // "no diagnostics"; the human-readable confirmation would corrupt it.
        if !json {
            println!("{path}: clean");
        }
        return ExitCode::SUCCESS;
    }
    for d in &diagnostics {
        if json {
            println!("{}", diagnostic_json(path, d));
        } else {
            println!("{path}:{d}");
        }
    }
    let (errors, warnings) = diagnostics
        .iter()
        .fold((0, 0), |(e, w), d| match d.severity {
            flogic_lite::analysis::Severity::Error => (e + 1, w),
            flogic_lite::analysis::Severity::Warning => (e, w + 1),
        });
    eprintln!("{path}: {errors} error(s), {warnings} warning(s)");
    ExitCode::FAILURE
}

/// `flq lint --sigma FILE`: parse and admission-check a constraint set,
/// reporting its chase-termination classification. Exit 0 when admitted
/// (possibly with warnings), 2 when rejected, 1 on read/parse errors.
fn run_lint_sigma(path: &str, json: bool) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let admission = match admit_sigma(&src, path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{path}: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in admission.diagnostics() {
        if json {
            println!("{}", diagnostic_json(path, d));
        } else {
            println!("{path}:{d}");
        }
    }
    // The verdict goes to stderr so --json stdout stays pure JSONL.
    eprintln!("{path}: {}", admission.summary());
    if admission.is_admitted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// `flq status <url>`: fetch `/v1/status` from a running `flqd` and
/// render the JSON rollup as a human-readable table.
fn cmd_status(args: &[String]) -> ExitCode {
    let (url, obs) = match split_file_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let code = match fetch_status(url) {
        Ok((addr, body)) => match render_status(&addr, &body) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    obs.finish(code)
}

/// One `GET /v1/status` exchange over a fresh connection. Accepts
/// `HOST:PORT` or `http://HOST:PORT[/]`; returns the normalized address
/// and the response body.
fn fetch_status(url: &str) -> Result<(String, String), String> {
    use std::io::Read as _;
    let addr = url
        .strip_prefix("http://")
        .unwrap_or(url)
        .trim_end_matches('/');
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    write!(
        stream,
        "GET /v1/status HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let status = head.split(' ').nth(1).unwrap_or("<none>");
    if status != "200" {
        return Err(format!("{addr} answered HTTP {status}"));
    }
    Ok((addr.to_string(), body.to_string()))
}

/// Renders the `/v1/status` JSON as the `flq status` table.
fn render_status(addr: &str, body: &str) -> Result<String, String> {
    use flogic_lite::serve::json::{self, Json};
    let value = json::parse(body).map_err(|e| format!("cannot parse status body: {e}"))?;
    let root = value.as_obj().ok_or("status body is not a JSON object")?;
    let num = |obj: &std::collections::BTreeMap<String, Json>, key: &str| {
        obj.get(key).and_then(Json::as_u64).unwrap_or(0)
    };
    let child = |key: &str| {
        root.get(key)
            .and_then(Json::as_obj)
            .cloned()
            .unwrap_or_default()
    };
    let gauges = child("gauges");
    let cache = child("cache");
    let responses = child("responses");
    let access = child("access_log");
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "flqd at {addr} — up {}s", num(root, "uptime_s"));
    let _ = writeln!(
        out,
        "requests    {} total, {} rejected, {} connections",
        num(root, "requests_total"),
        num(root, "rejected_total"),
        num(root, "connections_total")
    );
    let _ = writeln!(
        out,
        "responses   {} 2xx, {} 4xx, {} 5xx",
        num(&responses, "2xx"),
        num(&responses, "4xx"),
        num(&responses, "5xx")
    );
    let _ = writeln!(
        out,
        "gauges      open_connections={} queue_highwater={} in_flight_workers={} snapshot_resident_bytes={}",
        num(&gauges, "open_connections"),
        num(&gauges, "queue_depth_highwater"),
        num(&gauges, "in_flight_workers"),
        num(&gauges, "snapshot_resident_bytes")
    );
    let _ = writeln!(
        out,
        "caches      decision {}% hit ({} hit / {} miss), snapshot {}% hit ({} hit / {} miss)",
        num(&cache, "decision_hit_pct"),
        num(&cache, "decision_hits"),
        num(&cache, "decision_misses"),
        num(&cache, "snapshot_hit_pct"),
        num(&cache, "snapshot_hits"),
        num(&cache, "snapshot_misses")
    );
    let _ = writeln!(
        out,
        "batch       {} dedup hits",
        num(root, "batch_dedup_hits")
    );
    let _ = writeln!(
        out,
        "access log  {} lines, {} dropped",
        num(&access, "lines"),
        num(&access, "dropped")
    );
    for (key, title) in [("stages", "stage"), ("endpoints", "endpoint")] {
        let section = child(key);
        let _ = writeln!(
            out,
            "\n{title:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "count", "p50_us", "p90_us", "p99_us", "max_us"
        );
        for (name, stats) in &section {
            let Some(stats) = stats.as_obj() else {
                continue;
            };
            let _ = writeln!(
                out,
                "{name:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                num(stats, "count"),
                num(stats, "p50_us"),
                num(stats, "p90_us"),
                num(stats, "p99_us"),
                num(stats, "max_us")
            );
        }
    }
    Ok(out)
}

/// `flq cache <stat|compact|inspect|verify> DIR`: offline operations on
/// a `flqd --data-dir` decision store. Opening runs the same recovery
/// path the server does (WAL replay, manifest fencing, quarantine), so
/// `stat` on a just-crashed dir also reports what recovery found.
fn cmd_cache(args: &[String]) -> ExitCode {
    let mut obs = CliObs::disabled();
    let mut limit = 10usize;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs.try_consume(a.as_str(), &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(code) => return code,
        }
        match a.as_str() {
            "--limit" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => limit = n,
                None => {
                    eprintln!("error: --limit needs a number");
                    return usage();
                }
            },
            s if s.starts_with("--") => {
                eprintln!("error: unknown flag `{s}`");
                return usage();
            }
            _ => positional.push(a),
        }
    }
    let [action, dir] = positional.as_slice() else {
        return usage();
    };
    let code = run_cache(action, dir, limit);
    obs.finish(code)
}

fn run_cache(action: &str, dir: &str, limit: usize) -> ExitCode {
    use flogic_lite::store::{Store, StoreOptions};
    if !matches!(action, "stat" | "compact" | "inspect" | "verify") {
        eprintln!(
            "error: unknown cache action {action:?} (available: stat, compact, inspect, verify)"
        );
        return usage();
    }
    let store = match Store::open(std::path::Path::new(dir), StoreOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error opening store at {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match action {
        "stat" => {
            let s = store.stats();
            println!("store at {dir}");
            println!("generation        {}", s.generation);
            println!("segments          {}", s.segments);
            println!("segment entries   {}", s.segment_entries);
            println!("memtable entries  {}", s.memtable_entries);
            println!("wal bytes         {}", s.wal_bytes);
            println!("wal replayed      {} record(s)", s.wal_replayed);
            if s.wal_torn_bytes > 0 {
                println!(
                    "wal torn tail     {} byte(s) dropped on open",
                    s.wal_torn_bytes
                );
            }
            if s.quarantined > 0 {
                println!("quarantined       {} file(s) on open", s.quarantined);
            }
            for (name, gen, entries) in store.segment_rows() {
                println!("  {name}  gen {gen}  {entries} entries");
            }
            ExitCode::SUCCESS
        }
        "compact" => {
            let before = store.stats();
            if let Err(e) = store.compact_now() {
                eprintln!("error compacting {dir}: {e}");
                return ExitCode::FAILURE;
            }
            let after = store.stats();
            println!(
                "compacted {dir}: {} segment(s) ({} entries) -> {} segment(s) ({} entries)",
                before.segments, before.segment_entries, after.segments, after.segment_entries
            );
            ExitCode::SUCCESS
        }
        "inspect" => {
            let entries = match store.sample(limit) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("error reading {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{} persisted decision(s) (limit {limit}):", entries.len());
            for (i, (key, value)) in entries.iter().enumerate() {
                match flogic_lite::core::decode_decision(value) {
                    Some(r) => {
                        let verdict = match r.verdict() {
                            flogic_lite::core::Verdict::Holds => "holds",
                            flogic_lite::core::Verdict::NotHolds => "not_holds",
                            flogic_lite::core::Verdict::Exhausted(_) => "exhausted",
                        };
                        println!(
                            "  [{i}] key {} bytes  {verdict}{}{}  ({} chase conjuncts, bound {})",
                            key.len(),
                            if r.is_vacuous() { "  vacuous" } else { "" },
                            if r.decided_by_analysis() {
                                "  static"
                            } else {
                                ""
                            },
                            r.chase_conjuncts(),
                            r.level_bound()
                        );
                    }
                    None => println!(
                        "  [{i}] key {} bytes  UNDECODABLE ({} value bytes; version skew or corruption)",
                        key.len(),
                        value.len()
                    ),
                }
            }
            ExitCode::SUCCESS
        }
        "verify" => {
            let report = match store.verify() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error verifying {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "verified {} segment(s), {} entries",
                report.segments_ok, report.entries
            );
            for problem in &report.problems {
                eprintln!("problem: {problem}");
            }
            if report.is_clean() {
                println!("clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("{} problem(s) found", report.problems.len());
                ExitCode::FAILURE
            }
        }
        _ => unreachable!("gated above"),
    }
}

fn cmd_eval(args: &[String]) -> ExitCode {
    let (path, obs) = match split_file_args(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let code = run_eval(path);
    obs.finish(code)
}

fn run_eval(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (queries, db) = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (closed, stats) = match close_database(&db, &ClosureOptions::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error closing the fact base under Sigma_FL: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "% fact base: {} asserted, {} after Sigma_FL closure ({} invented values)",
        db.len(),
        closed.len(),
        stats.nulls_invented
    );
    for q in &queries {
        println!("\n?- {q}");
        let result = answers(q, &closed);
        if result.is_empty() {
            println!("   no.");
            continue;
        }
        for tuple in result {
            if tuple.is_empty() {
                println!("   yes.");
            } else {
                let cells: Vec<String> = tuple.iter().map(|t| t.to_string()).collect();
                println!("   ({})", cells.join(", "));
            }
        }
    }
    ExitCode::SUCCESS
}
