//! `flq` — command-line front end for the F-logic Lite toolkit.
//!
//! ```text
//! flq contains  "<q1>" "<q2>"        decide q1 ⊆_ΣFL q2 (and the converse)
//! flq explain   "<q1>" "<q2>"        prove the containment step by step
//! flq chase     "<q>" [--bound N] [--dot]
//!                                    materialize the (bounded) chase
//! flq minimize  "<q>"                Σ_FL-aware query minimisation
//! flq eval      <file>               run a program: facts are closed under
//!                                    Σ_FL, goals/queries are answered
//! ```
//!
//! Queries use the paper's syntax, e.g. `q(A,B) :- T1[A*=>T2], T2[B*=>_].`
//! Program files mix facts (`john:student.`), rules and goals (`?- X::person.`).

use std::process::ExitCode;

use flogic_lite::chase::{chase_bounded, to_dot, to_text, ChaseOptions};
use flogic_lite::core::{classic_contains, contains, explain, minimize, ContainmentOptions};
use flogic_lite::datalog::{answers, close_database, ClosureOptions};
use flogic_lite::prelude::*;
use flogic_lite::syntax::query_to_flogic;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  flq contains <q1> <q2>\n  flq chase <q> [--bound N] [--dot]\n  \
         flq explain <q1> <q2>\n  flq minimize <q>\n  flq eval <file>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("contains") => cmd_contains(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("chase") => cmd_chase(&args[1..]),
        Some("minimize") => cmd_minimize(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        _ => usage(),
    }
}

fn parse_or_exit(src: &str) -> Result<flogic_lite::model::ConjunctiveQuery, ExitCode> {
    parse_query(src).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_contains(args: &[String]) -> ExitCode {
    let [q1_src, q2_src] = args else {
        return usage();
    };
    let (q1, q2) = match (parse_or_exit(q1_src), parse_or_exit(q2_src)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return ExitCode::FAILURE,
    };
    let forward = match contains(&q1, &q2) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("q1: {q1}");
    println!("q2: {q2}");
    println!();
    println!(
        "q1 ⊆_ΣFL q2:  {}{}",
        forward.holds(),
        if forward.is_vacuous() {
            "  (vacuous: q1 unsatisfiable)"
        } else {
            ""
        }
    );
    if let Some(w) = forward.witness() {
        println!("  witness: {w}");
    }
    println!(
        "  chase: {} conjuncts, bound {} (Theorem 12: 2*{}*{})",
        forward.chase_conjuncts(),
        forward.level_bound(),
        q1.size(),
        q2.size()
    );
    if let Ok(back) = contains(&q2, &q1) {
        println!("q2 ⊆_ΣFL q1:  {}", back.holds());
    }
    if let Ok(classic) = classic_contains(&q1, &q2) {
        println!("q1 ⊆ q2 classically (no Σ_FL):  {classic}");
    }
    ExitCode::SUCCESS
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let [q1_src, q2_src] = args else {
        return usage();
    };
    let (q1, q2) = match (parse_or_exit(q1_src), parse_or_exit(q2_src)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return ExitCode::FAILURE,
    };
    match explain(&q1, &q2, &ContainmentOptions::default()) {
        Ok(e) => {
            println!("q1: {q1}");
            println!("q2: {q2}\n");
            println!("{e}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_chase(args: &[String]) -> ExitCode {
    let Some(q_src) = args.first() else {
        return usage();
    };
    let q = match parse_or_exit(q_src) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let mut bound = 2 * q.size() as u32; // δ, a sensible default depth
    let mut dot = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bound" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => bound = n,
                None => return usage(),
            },
            "--dot" => dot = true,
            _ => return usage(),
        }
    }
    let chase = chase_bounded(
        &q,
        &ChaseOptions {
            level_bound: bound,
            max_conjuncts: 1_000_000,
            ..Default::default()
        },
    );
    if chase.is_failed() {
        println!("chase FAILED (rho4 equated two distinct constants): the query is\nunsatisfiable w.r.t. Sigma_FL; it is contained in every query of its arity.");
        return ExitCode::SUCCESS;
    }
    if dot {
        print!("{}", to_dot(&chase));
    } else {
        println!(
            "outcome: {:?}   conjuncts: {}   max level: {}   head: ({})",
            chase.outcome(),
            chase.len(),
            chase.max_level(),
            chase
                .head()
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        print!("{}", to_text(&chase));
    }
    ExitCode::SUCCESS
}

fn cmd_minimize(args: &[String]) -> ExitCode {
    let [q_src] = args else { return usage() };
    let q = match parse_or_exit(q_src) {
        Ok(q) => q,
        Err(code) => return code,
    };
    match minimize(&q) {
        Ok(m) => {
            println!("input    ({} conjuncts): {q}", q.size());
            println!("minimal  ({} conjuncts): {m}", m.size());
            println!("f-logic  : {}", query_to_flogic(&m));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_eval(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (queries, db) = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (closed, stats) = match close_database(&db, &ClosureOptions::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error closing the fact base under Sigma_FL: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "% fact base: {} asserted, {} after Sigma_FL closure ({} invented values)",
        db.len(),
        closed.len(),
        stats.nulls_invented
    );
    for q in &queries {
        println!("\n?- {q}");
        let result = answers(q, &closed);
        if result.is_empty() {
            println!("   no.");
            continue;
        }
        for tuple in result {
            if tuple.is_empty() {
                println!("   yes.");
            } else {
                let cells: Vec<String> = tuple.iter().map(|t| t.to_string()).collect();
                println!("   ({})", cells.join(", "));
            }
        }
    }
    ExitCode::SUCCESS
}
