//! Service discovery via query containment — the Semantic-Web use case
//! the paper's introduction motivates ("ontology integration, and semantic
//! Web services").
//!
//! Each Web service advertises its *capability* as a conjunctive
//! meta-query over a shared travel ontology: the tuples it can deliver.
//! A client formulates a *request* the same way. A service matches the
//! request iff its capability query is **contained** in the request under
//! `Σ_FL` — every answer the service produces is an answer the client
//! asked for, on every knowledge base that respects the ontology's typing
//! and cardinality semantics.
//!
//! Run with: `cargo run --example service_discovery`

use flogic_lite::core::{classic_contains, contains};
use flogic_lite::prelude::*;

fn main() {
    // The client wants: providers P that sell some product of a type that
    // is (a subtype of) bookable, with a known price value.
    let request =
        parse_query("request(P, Prod) :- P[sells->Prod], Prod:T, T::bookable, Prod[price->V].")
            .expect("request parses");

    // Service capabilities, each a meta-query over the shared ontology.
    let services = [
        (
            "EuroTrainTickets",
            // Sells train tickets; the ontology says ticket::bookable and
            // tickets are priced. Note the *schema-level* conjuncts: this
            // service describes itself partly at the meta level.
            "cap(P, Prod) :- P[sells->Prod], Prod:ticket, ticket::bookable,
                             Prod[price->V].",
        ),
        (
            "HotelWorld",
            // Sells rooms of *some* bookable type with a mandatory price.
            // The price value is not stored — but `price` is a mandatory
            // attribute, so ρ5 guarantees a value exists: the containment
            // needs the existential reasoning of the chase.
            "cap(P, Prod) :- P[sells->Prod], Prod:T, T::bookable,
                             Prod[price {1:*} *=> number].",
        ),
        (
            "AdSpaceBroker",
            // Sells ad slots, which the service does not relate to
            // bookable at all: must not match.
            "cap(P, Prod) :- P[sells->Prod], Prod:adslot, Prod[price->V].",
        ),
    ];

    println!("request: {request}\n");
    println!(
        "{:<18} {:>12} {:>18}",
        "service", "matches", "classical-only?"
    );
    println!("{}", "-".repeat(52));
    let mut matched = Vec::new();
    for (name, cap_src) in services {
        let cap = parse_query(cap_src).expect("capability parses");
        let sigma = contains(&cap, &request).expect("same arity").holds();
        let classical = classic_contains(&cap, &request).expect("same arity");
        println!("{name:<18} {sigma:>12} {classical:>18}");
        if sigma {
            matched.push((name, classical));
        }
    }

    assert_eq!(
        matched.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        vec!["EuroTrainTickets", "HotelWorld"]
    );
    // HotelWorld matches only thanks to Σ_FL (mandatory ⇒ value exists);
    // a classical matcher would wrongly reject it.
    let hotel = matched.iter().find(|(n, _)| *n == "HotelWorld").unwrap();
    assert!(!hotel.1, "HotelWorld must be a Σ_FL-only match");
    println!(
        "\nHotelWorld is discovered only because the chase knows that a\n\
         mandatory `price` attribute always has a value (rho5 + rho10):\n\
         a classical (constraint-free) matcher misses it."
    );
}
