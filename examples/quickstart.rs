//! Quickstart: parse two F-logic Lite meta-queries and decide containment.
//!
//! Run with: `cargo run --example quickstart`

use flogic_lite::core::classic_contains;
use flogic_lite::prelude::*;

fn main() {
    // The "joinable attributes" example from Section 2 of the paper.
    //
    // q(A, B): pairs of attributes joinable through a subclass hop —
    // the range T2 of A is a subclass of the domain T3 of B.
    // qq(A, B): pairs of attributes directly joinable.
    let q_src = "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].";
    let qq_src = "qq(A,B) :- T1[A*=>T2], T2[B*=>_].";

    let q = parse_query(q_src).expect("q parses");
    let qq = parse_query(qq_src).expect("qq parses");
    println!("q  = {q}");
    println!("qq = {qq}");
    println!();

    // Decide q ⊆_ΣFL qq with the Theorem 12 bounded-chase procedure.
    let result = contains(&q, &qq).expect("same arity");
    println!("q  ⊆_ΣFL qq ?  {}", result.holds());
    println!("  chase conjuncts: {}", result.chase_conjuncts());
    println!("  level bound:     {}", result.level_bound());
    if let Some(witness) = result.witness() {
        println!("  witness hom:     {witness}");
    }
    println!();

    // The containment needs the F-logic semantics: classically (without
    // Σ_FL) it does NOT hold — supertyping (ρ8) and type inheritance (ρ7)
    // are what connect the subclass hop.
    let classical = classic_contains(&q, &qq).expect("same arity");
    println!("q  ⊆ qq classically (no constraints)?  {classical}");

    // And the containment is strict.
    let converse = contains(&qq, &q).expect("same arity");
    println!("qq ⊆_ΣFL q ?  {}", converse.holds());

    assert!(result.holds() && !classical && !converse.holds());
    println!("\nAll as the paper says.");
}
