//! Meta-querying a knowledge base: data and schema in one language.
//!
//! Builds a small university ontology, closes it under `Σ_FL` (so the
//! inheritance and cardinality rules take effect), and runs the kinds of
//! meta-queries the paper's Section 2 showcases — including mixed
//! data/meta queries and queries whose answers only exist because of
//! inference (inherited types, invented mandatory values).
//!
//! Run with: `cargo run --example schema_explorer`

use flogic_lite::datalog::{answers, close_database, ClosureOptions};
use flogic_lite::prelude::*;

fn main() {
    // The running example of the paper, extended.
    let raw = parse_database(
        "% class hierarchy
         freshman::student. student::person. employee::person.
         % schema with types and cardinalities
         person[name {1:*} *=> string].
         person[age {0:1} *=> number].
         student[major *=> string].
         employee[salary *=> number].
         % data, mixed with schema-level facts
         john:freshman. mary:student. bob:employee.
         john[name -> jsmith]. john[age -> 33].
         mary[major -> databases]. bob[salary -> 90000].
         jsmith:string. databases:string. 33:number. 90000:number.
         % classes are objects too: student is a member of class `class`
         student:class. person:class.",
    )
    .expect("ontology parses");

    let (kb, stats) = close_database(&raw, &ClosureOptions::default())
        .expect("ontology is consistent and finitely closable");
    println!(
        "ontology: {} asserted facts, {} after Sigma_FL closure ({} invented values)\n",
        raw.len(),
        kb.len(),
        stats.nulls_invented
    );

    let demos = [
        // Pure meta-queries (schema browsing).
        ("subclasses of person", "q(X) :- X::person."),
        (
            "attributes of student of type string",
            "q(Att) :- student[Att*=>string].",
        ),
        (
            "mandatory attributes per class",
            "q(Att, C) :- C[Att {1:*} *=> _], C:class.",
        ),
        // Mixed meta/data query from Section 2.
        (
            "string-typed attribute values of john",
            "q(Att, Val) :- student[Att*=>string], john[Att->Val].",
        ),
        // Answers that require inference: john's `major` type is inherited
        // from student (rho7 + rho6), his membership in person from rho3.
        ("classes john belongs to", "q(C) :- john:C."),
        // rho5 in action: every person has a name value, even bob whose
        // name was never asserted.
        ("objects with a name value", "q(O) :- O[name->V], O:person."),
    ];

    for (title, src) in demos {
        let q = parse_query(src).expect("demo query parses");
        let result = answers(&q, &kb);
        println!("{title}:\n  ?- {src}");
        for tuple in &result {
            let rendered: Vec<String> = tuple.iter().map(|t| t.to_string()).collect();
            println!("     ({})", rendered.join(", "));
        }
        println!();
    }

    // Assertions that pin the interesting inferences.
    let johns_classes = answers(&parse_query("q(C) :- john:C.").unwrap(), &kb);
    assert!(
        johns_classes.contains(&vec![Term::constant("person")]),
        "rho3 inference"
    );
    let named = answers(&parse_query("q(O) :- O[name->V], O:person.").unwrap(), &kb);
    assert!(
        named.contains(&vec![Term::constant("bob")]),
        "rho5 invented a name value for bob"
    );
    println!("All inferences verified.");
}
