//! Query optimisation with containment: Σ_FL-aware minimisation.
//!
//! "Solution to the containment problem for F-logic queries can help with
//! query optimization" (paper, abstract). This example takes queries whose
//! bodies contain conjuncts that are *implied by the F-logic semantics* —
//! inherited types, transitive subclass edges, inherited cardinality
//! constraints — and removes them, which classic (constraint-free)
//! minimisation cannot do.
//!
//! Run with: `cargo run --example query_optimizer`

use flogic_lite::core::minimize;
use flogic_lite::hom::classic_core;
use flogic_lite::prelude::*;
use flogic_lite::syntax::query_to_flogic;

fn main() {
    let queries = [
        // member(X, D) follows from member(X, C), sub(C, D) by ρ3.
        "q1(X) :- X:C, C::D, X:D.",
        // The transitive edge sub(X, Z) follows by ρ2.
        "q2(X, Z) :- X::Y, Y::Z, X::Z.",
        // type(O, A, T) is inherited from the class by ρ6.
        "q3(O, A, T) :- O:C, C[A*=>T], O[A*=>T].",
        // funct on the member is inherited from the class by ρ12.
        "q4(O) :- O:C, funct(a, C), funct(a, O), O[a->V].",
        // A genuinely minimal query: nothing should be removed.
        "q5(A, B) :- T1[A*=>T2], T2::T3, T3[B*=>T4].",
        // Classic redundancy (duplicate pattern) — both minimizers get it.
        "q6(X) :- X:C, X:D.",
    ];

    println!("{:<58} {:>8} {:>8}", "query", "classic", "Σ_FL");
    println!("{}", "-".repeat(78));
    for src in queries {
        let q = parse_query(src).expect("example queries parse");
        let classic = classic_core(&q);
        let minimal = minimize(&q).expect("minimisation succeeds");
        println!(
            "{:<58} {:>5}->{:<2} {:>5}->{:<2}",
            src,
            q.size(),
            classic.size(),
            q.size(),
            minimal.size()
        );
        if minimal.size() < q.size() {
            println!("    optimized: {}", query_to_flogic(&minimal));
        }
    }

    // Sanity: the Σ_FL-minimised q1 is equivalent to the original and
    // strictly smaller than the classic core.
    let q1 = parse_query(queries[0]).unwrap();
    let minimal = minimize(&q1).unwrap();
    assert!(flogic_lite::core::equivalent(&q1, &minimal).unwrap());
    assert!(minimal.size() < classic_core(&q1).size());
    println!("\nΣ_FL-minimisation removed conjuncts classic minimisation must keep.");
}
